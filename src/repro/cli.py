"""Command-line driver: ``repro-sim`` / ``python -m repro``.

Examples:
    repro-sim table1
    repro-sim table4 --scale 0.25
    repro-sim hit-rates --names li vortex --scale 0.5
    repro-sim speedup --jobs 4                 # parallel, cached
    repro-sim speedup --no-cache --json f2.json
    repro-sim run --benchmark li --mechanism tos-pointer-contents
    repro-sim run --benchmark go --paths 4 --stacks per-path
    repro-sim run --benchmark go --engine fast  # columnar cycle engine
    repro-sim parity --names li vortex          # fast vs reference, all cells
    repro-sim corpus build traces/ --names li vortex --scale 0.25
    repro-sim corpus import traces/ champsim.trace.xz --name srv0
    repro-sim corpus replay traces/ --jobs 4 --sizes 1 4 16 64
    repro-sim corpus replay traces/ --engine batch      # fast replay
    repro-sim corpus fetch benchmarks/tracesets/sample.json --corpus traces/
    repro-sim corpus fetch benchmarks/tracesets/sample.json --check-manifest
    repro-sim corpus diffcheck traces/ --report diffreport.json
    repro-sim corpus report traces/ --engine batch
    repro-sim cluster coordinator --bind 127.0.0.1:8736
    repro-sim cluster worker --coordinator http://127.0.0.1:8736
    repro-sim stack-depth --backend cluster     # sweep through the fleet
    repro-sim serve --bind 127.0.0.1:8642       # HTTP API + dashboard
    repro-sim runs list
    repro-sim runs compare -2 -1
    repro-sim trace show -1                     # waterfall of the last run
    repro-sim trace critical-path -1
    repro-sim trace export -1 --out trace.json  # Perfetto / chrome://tracing
    REPRO_PROFILE=1 repro-sim speedup && repro-sim trace flame -1
    repro-sim cluster status --prom             # Prometheus exposition text
    repro-sim bench compare benchmarks/baselines/smoke.json benchmarks/out
    repro-sim bench snapshot benchmarks/out benchmarks/baselines/smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import telemetry
from repro.config.defaults import baseline_config
from repro.config.options import RepairMechanism, StackOrganization
from repro.core import tables as table_builders
from repro.core.executor import (
    BACKENDS,
    ResultCache,
    SweepExecutor,
    default_backend,
    default_jobs,
)
from repro.core.experiment import (
    WorkloadSpec,
    default_scale,
    default_seed,
    multipath_machine,
    run_cycle,
    run_multipath,
)
from repro.service.core import SWEEPS, SimulationService, normalize_request
from repro.stats.tables import format_table
from repro.workloads.characterize import table2 as build_table2
from repro.workloads.generator import build_workload
from repro.workloads.profiles import BENCHMARK_NAMES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Return-address-stack repair reproduction "
                    "(Skadron et al., MICRO-31 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, names_default=None) -> None:
        p.add_argument("--names", nargs="*",
                       default=names_default,
                       choices=BENCHMARK_NAMES,
                       help="benchmarks to run (default: varies)")
        p.add_argument("--seed", type=int, default=default_seed())
        p.add_argument("--scale", type=float, default=default_scale())
        p.add_argument("--jobs", type=int, default=default_jobs(),
                       help="worker processes for independent simulations "
                            "(default: $REPRO_JOBS or 1)")
        p.add_argument("--backend", default=default_backend(),
                       choices=list(BACKENDS),
                       help="where cache misses execute: 'local' process "
                            "pool or 'cluster' remote workers via "
                            "$REPRO_COORDINATOR (default: $REPRO_BACKEND "
                            "or local; see docs/distributed.md)")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore and don't update the on-disk result "
                            "cache (see docs/performance.md)")
        p.add_argument("--no-telemetry", action="store_true",
                       help="disable metrics, spans, and the run ledger "
                            "(see docs/observability.md)")
        p.add_argument("--json", metavar="OUT", default=None,
                       help="also write the table as JSON to OUT "
                            "(table commands only)")

    for name in SWEEPS:
        p = sub.add_parser(name, help=f"print {name}")
        common(p)

    p = sub.add_parser("table2", help="workload characterisation")
    common(p)

    p = sub.add_parser("corruption",
                       help="classify return mispredictions by cause")
    common(p)

    p = sub.add_parser("return-predictors",
                       help="RAS vs BTB vs target caches on returns")
    common(p)

    p = sub.add_parser("smt",
                       help="SMT threads: shared vs per-thread stacks")
    common(p)
    p.add_argument("--benchmark", default="li", choices=BENCHMARK_NAMES)
    p.add_argument("--threads", type=int, default=2)

    p = sub.add_parser("run", help="simulate one benchmark")
    common(p)
    p.add_argument("--benchmark", required=True, choices=BENCHMARK_NAMES)
    p.add_argument("--mechanism", default="tos-pointer-contents",
                   choices=[m.value for m in RepairMechanism])
    p.add_argument("--no-ras", action="store_true",
                   help="disable the RAS (BTB-only returns)")
    p.add_argument("--ras-entries", type=int, default=32)
    p.add_argument("--paths", type=int, default=1,
                   help=">1 selects the multipath model")
    p.add_argument("--stacks", default="per-path",
                   choices=[o.value for o in StackOrganization])
    p.add_argument("--engine", default="reference",
                   choices=["reference", "fast"],
                   help="'fast' selects the columnar work-list twin "
                        "(bit-identical counters; see docs/engines.md)")

    p = sub.add_parser("disasm", help="disassemble a generated benchmark")
    common(p)
    p.add_argument("--benchmark", required=True, choices=BENCHMARK_NAMES)
    p.add_argument("--count", type=int, default=40)

    p = sub.add_parser("corpus",
                       help="manage sharded trace corpora (docs/traces.md)")
    csub = p.add_subparsers(dest="corpus_command", required=True)

    c = csub.add_parser("build",
                        help="record workload shards into a corpus")
    c.add_argument("corpus", help="corpus directory (created if needed)")
    c.add_argument("--names", nargs="*", default=None,
                   choices=BENCHMARK_NAMES,
                   help="benchmarks to record (default: all)")
    c.add_argument("--seed", type=int, default=default_seed())
    c.add_argument("--scale", type=float, default=default_scale())
    c.add_argument("--max-instructions", type=int, default=50_000_000)

    c = csub.add_parser("import",
                        help="import a ChampSim trace as a shard")
    c.add_argument("corpus", help="corpus directory (created if needed)")
    c.add_argument("trace", help="ChampSim trace file (xz/gz/raw)")
    c.add_argument("--name", default=None,
                   help="shard name (default: trace file stem)")
    c.add_argument("--limit", type=int, default=None,
                   help="import at most this many trace records")

    c = csub.add_parser("info", help="list a corpus's shards")
    c.add_argument("corpus")

    c = csub.add_parser("verify",
                        help="recompute shard checksums against the manifest")
    c.add_argument("corpus")

    c = csub.add_parser("replay",
                        help="stack-depth sweep over every shard")
    c.add_argument("corpus")
    c.add_argument("--sizes", nargs="+", type=int,
                   default=[1, 2, 4, 8, 12, 16, 32, 64])
    c.add_argument("--mechanism", default="none",
                   choices=[m.value for m in RepairMechanism])
    c.add_argument("--engine", default="trace", choices=["trace", "batch"],
                   help="replay path: 'trace' streams events, 'batch' "
                        "decodes block-at-a-time (identical counters, "
                        "several times faster; docs/performance.md)")
    c.add_argument("--shards", nargs="*", default=None,
                   help="restrict to these shard names")
    c.add_argument("--jobs", type=int, default=default_jobs())
    c.add_argument("--backend", default=default_backend(),
                   choices=list(BACKENDS),
                   help="execution backend for the replay sweep "
                        "(see docs/distributed.md)")
    c.add_argument("--no-cache", action="store_true",
                   help="ignore and don't update the on-disk result cache")
    c.add_argument("--no-telemetry", action="store_true",
                   help="disable metrics, spans, and the run ledger")
    c.add_argument("--json", metavar="OUT", default=None,
                   help="also write the table as JSON to OUT")

    def corpus_executor_opts(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--jobs", type=int, default=default_jobs())
        sp.add_argument("--backend", default=default_backend(),
                        choices=list(BACKENDS),
                        help="execution backend (see docs/distributed.md)")
        sp.add_argument("--no-cache", action="store_true",
                        help="ignore and don't update the on-disk result "
                             "cache")
        sp.add_argument("--no-telemetry", action="store_true",
                        help="disable metrics, spans, and the run ledger")
        sp.add_argument("--json", metavar="OUT", default=None,
                        help="also write the table as JSON to OUT")

    c = csub.add_parser(
        "fetch",
        help="download a trace set and ingest it into a corpus "
             "(docs/validation.md)")
    c.add_argument("manifest", help="trace-set manifest JSON "
                                    "(benchmarks/tracesets/*.json)")
    c.add_argument("--corpus", default=None,
                   help="corpus directory (created if needed; required "
                        "unless --check-manifest)")
    c.add_argument("--dest", default=None,
                   help="download directory "
                        "(default: <corpus>/downloads)")
    c.add_argument("--names", dest="trace_names", nargs="*", default=None,
                   help="restrict to these trace names (note: trace-set "
                        "names, not benchmark names)")
    c.add_argument("--jobs", type=int, default=default_jobs(),
                   help="parallel ingestion worker processes")
    c.add_argument("--limit", type=int, default=None,
                   help="import at most this many records per trace")
    c.add_argument("--check-manifest", action="store_true",
                   help="validate the manifest offline (zero network, "
                        "no corpus needed) and exit")

    c = csub.add_parser(
        "diffcheck",
        help="differential replay against the reference ChampSim "
             "model; exits 1 on any divergence (docs/validation.md)")
    c.add_argument("corpus")
    c.add_argument("--mechanism", default="champsim",
                   choices=[m.value for m in RepairMechanism])
    c.add_argument("--ras-entries", type=int, default=64)
    c.add_argument("--shards", nargs="*", default=None,
                   help="restrict to these shard names")
    c.add_argument("--report", metavar="OUT", default=None,
                   help="write the full DiffReport list as JSON to OUT "
                        "(the CI artifact)")
    corpus_executor_opts(c)

    c = csub.add_parser(
        "report",
        help="corpus-wide headline table: every shard, every "
             "mechanism (docs/validation.md)")
    c.add_argument("corpus")
    c.add_argument("--ras-entries", type=int, default=64)
    c.add_argument("--engine", default="batch", choices=["trace", "batch"],
                   help="replay path (identical counters; 'batch' is "
                        "several times faster)")
    c.add_argument("--shards", nargs="*", default=None,
                   help="restrict to these shard names")
    corpus_executor_opts(c)

    p = sub.add_parser("runs",
                       help="inspect the persistent run ledger "
                            "(docs/observability.md)")
    rsub = p.add_subparsers(dest="runs_command", required=True)

    def ledger_opt(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--ledger", default=None,
                        help="ledger file (default: <cache root>/"
                             "ledger.jsonl)")

    r = rsub.add_parser("list", help="recorded runs, oldest first")
    ledger_opt(r)
    r.add_argument("--limit", type=int, default=20,
                   help="show only the newest N entries (default 20)")
    r.add_argument("--json", metavar="OUT", default=None,
                   help="also write the table as JSON to OUT")

    r = rsub.add_parser("show", help="one ledger entry in full")
    ledger_opt(r)
    r.add_argument("ref", help="run id (prefix) or index (-1 = latest)")
    r.add_argument("--json", metavar="OUT", default=None,
                   help="also write the entry (plus its integrity "
                        "verdict) as JSON to OUT")

    r = rsub.add_parser("compare",
                        help="diff two ledger entries (config fingerprint "
                             "delta + metric deltas)")
    ledger_opt(r)
    r.add_argument("a", help="run id (prefix) or index")
    r.add_argument("b", help="run id (prefix) or index")
    r.add_argument("--json", metavar="OUT", default=None,
                   help="also write the full diff as JSON to OUT")

    p = sub.add_parser("trace",
                       help="inspect distributed traces recorded next to "
                            "the run ledger (docs/observability.md)")
    tsub = p.add_subparsers(dest="trace_command", required=True)

    def trace_ref(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("ref", nargs="?", default="-1",
                        help="trace id, run id (prefix), or ledger index "
                             "(-1 = latest run; default)")

    t = tsub.add_parser("list", help="known traces, newest first")
    t.add_argument("--limit", type=int, default=20)

    t = tsub.add_parser("show", help="ASCII waterfall of one trace")
    trace_ref(t)
    t.add_argument("--width", type=int, default=100,
                   help="render width in columns (default 100)")

    t = tsub.add_parser("critical-path",
                        help="the span chain bounding end-to-end latency")
    trace_ref(t)
    t.add_argument("--json", metavar="OUT", default=None,
                   help="also write the path as JSON to OUT")

    t = tsub.add_parser("export",
                        help="write Chrome trace-event JSON "
                             "(open in Perfetto / chrome://tracing)")
    trace_ref(t)
    t.add_argument("--out", default=None,
                   help="output file (default trace-<id>.json)")

    t = tsub.add_parser("flame",
                        help="hottest stacks from the sweep's sampling "
                             "profile (REPRO_PROFILE=1)")
    trace_ref(t)
    t.add_argument("--top", type=int, default=20,
                   help="rows per section (default 20)")

    p = sub.add_parser("cluster",
                       help="distributed sweep fleet: coordinator, "
                            "workers, status (docs/distributed.md)")
    clsub = p.add_subparsers(dest="cluster_command", required=True)

    c = clsub.add_parser("coordinator",
                         help="run a standalone coordinator (blocks; "
                              "^C or POST /api/shutdown to stop)")
    c.add_argument("--bind", default="127.0.0.1:8736",
                   help="host:port to listen on (port 0 = ephemeral)")
    c.add_argument("--lease-timeout", type=float, default=None,
                   help="seconds before an unheartbeated lease is "
                        "stolen (default 30)")
    c.add_argument("--no-cache", action="store_true",
                   help="serve without the shared result cache")

    c = clsub.add_parser("worker",
                         help="lease and execute jobs until the "
                              "coordinator drains")
    c.add_argument("--coordinator", required=True,
                   help="coordinator URL, e.g. http://127.0.0.1:8736")
    c.add_argument("--name", default=None,
                   help="worker name for ledger attribution "
                        "(default: host-pid)")
    c.add_argument("--max-jobs", type=int, default=None,
                   help="exit after completing this many jobs")
    c.add_argument("--no-cache", action="store_true",
                   help="always execute; skip the shared result cache")

    c = clsub.add_parser("status",
                         help="one-line fleet summary + per-worker table")
    c.add_argument("--coordinator", required=True)
    c.add_argument("--json", metavar="OUT", default=None,
                   help="also write the raw status payload to OUT")
    c.add_argument("--prom", action="store_true",
                   help="print the coordinator's /metricz Prometheus "
                        "text instead of the tables")

    c = clsub.add_parser("submit",
                         help="run the stack-depth sweep through an "
                              "external coordinator")
    common(c)
    c.add_argument("--coordinator", required=True)
    c.add_argument("--sizes", nargs="+", type=int,
                   default=[1, 2, 4, 8, 12, 16, 32, 64])
    c.add_argument("--mechanism", default="tos-pointer-contents",
                   choices=[m.value for m in RepairMechanism])

    p = sub.add_parser("serve",
                       help="run the simulation service: HTTP API, job "
                            "queue, live dashboard (docs/service.md)")
    p.add_argument("--bind", default="127.0.0.1:8642",
                   help="host:port to listen on (port 0 = ephemeral; "
                        "the chosen port is announced on stderr)")
    p.add_argument("--jobs", type=int, default=default_jobs(),
                   help="worker processes per sweep (default: "
                        "$REPRO_JOBS or 1)")
    p.add_argument("--backend", default=default_backend(),
                   choices=list(BACKENDS),
                   help="where cache misses execute (docs/distributed.md)")
    p.add_argument("--coordinator", default=None,
                   help="coordinator URL for --backend cluster")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the on-disk result cache")
    p.add_argument("--max-concurrency", type=int, default=2,
                   help="sweeps simulated at once; beyond this, jobs "
                        "queue (default 2)")
    p.add_argument("--rate", type=float, default=None,
                   help="per-tenant submits/second token-bucket rate "
                        "(default: unlimited)")
    p.add_argument("--burst", type=int, default=None,
                   help="token-bucket burst capacity (default: max(1, "
                        "int(rate)))")
    p.add_argument("--quota", type=int, default=None,
                   help="max outstanding (queued+running) jobs per "
                        "tenant (default: unlimited)")

    p = sub.add_parser("bench",
                       help="benchmark baselines and the CI regression "
                            "gate (docs/performance.md)")
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("compare",
                        help="gate BENCH_*.json artifacts against a "
                             "baseline; exit 1 on regression")
    b.add_argument("baseline", help="baseline JSON "
                                    "(e.g. benchmarks/baselines/smoke.json)")
    b.add_argument("out", help="directory of BENCH_*.json artifacts "
                               "(e.g. benchmarks/out)")
    b.add_argument("--tolerance", type=float, default=None,
                   help="allowed wall-time headroom as a fraction "
                        "(default: the baseline's recorded tolerance, "
                        "itself defaulting to 0.25)")
    b.add_argument("--min-wall", type=float, default=None,
                   help="noise floor in seconds; benches under it are "
                        "checked for row counts only (default 0.2)")
    b.add_argument("--json", metavar="OUT", default=None,
                   help="also write the per-bench verdicts as JSON to OUT")

    b = bsub.add_parser("snapshot",
                        help="freeze a bench run into a baseline file")
    b.add_argument("out", help="directory of BENCH_*.json artifacts")
    b.add_argument("baseline", help="baseline JSON file to write")
    b.add_argument("--tolerance", type=float, default=None,
                   help="tolerance to record in the baseline "
                        "(default 0.25)")
    b.add_argument("--note", default="",
                   help="free-form provenance note to record")

    p = sub.add_parser("parity",
                       help="prove fast-engine counters bit-identical to "
                            "the reference engines (docs/engines.md)")
    common(p)
    p.add_argument("--array-backend", default=None,
                   choices=["python", "numpy"],
                   help="force the columnar array backend for the sweep "
                        "(default: $REPRO_CYCLE_BACKEND resolution)")
    p.add_argument("--ras-entries", nargs="+", type=int, default=[8, 32],
                   help="RAS sizes for the single-path cells")
    p.add_argument("--paths", nargs="+", type=int, default=[2],
                   help="path budgets for the multipath cells")
    p.add_argument("--no-multipath", action="store_true",
                   help="skip the multipath cells")

    p = sub.add_parser("report",
                       help="regenerate every table/figure in one pass")
    common(p)
    p.add_argument("--out", default=None,
                   help="write the report here instead of stdout")
    p.add_argument("--full", action="store_true",
                   help="include the slow sections (multipath, ablations)")
    return parser


def _fix_names(args: argparse.Namespace) -> None:
    if getattr(args, "names", None) in (None, []):
        args.names = list(BENCHMARK_NAMES)


def _run_command(args: argparse.Namespace) -> int:
    program = build_workload(args.benchmark, seed=args.seed, scale=args.scale)
    if args.paths > 1:
        config = multipath_machine(
            args.paths, StackOrganization(args.stacks))
        if args.engine == "fast":
            from repro.fastsim.multipath import run_multipath_fast
            result, _ = run_multipath_fast(program, config)
        else:
            result, _ = run_multipath(program, config)
    else:
        config = baseline_config()
        config = config.with_repair(RepairMechanism(args.mechanism))
        config = config.with_ras_entries(args.ras_entries)
        if args.no_ras:
            config = config.without_ras()
        if args.engine == "fast":
            from repro.fastsim.cycle import run_cycle_fast
            result, _ = run_cycle_fast(program, config)
        else:
            result, _ = run_cycle(program, config)
    summary = result.as_dict()
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["stat", "value"], rows,
                       title=f"{args.benchmark} (seed={args.seed}, "
                             f"scale={args.scale})"))
    return 0


def _parity_command(args: argparse.Namespace) -> int:
    from repro.fastsim.parity import parity_sweep

    reports = parity_sweep(
        args.names, seed=args.seed, scale=args.scale,
        ras_entries=tuple(args.ras_entries), paths=tuple(args.paths),
        backend=args.array_backend, include_multipath=not args.no_multipath)
    rows = [[r.label, len(r.reference), "ok" if r.matches
             else f"{len(r.mismatches)} DIVERGING"] for r in reports]
    print(format_table(["cell", "stats compared", "verdict"], rows,
                       title=f"Differential parity (seed={args.seed}, "
                             f"scale={args.scale})"))
    failed = [r for r in reports if not r.matches]
    for report in failed:
        for mismatch in report.mismatches:
            print(f"  {report.label}: {mismatch}", file=sys.stderr)
    return 1 if failed else 0


def _corpus_command(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusStore, corpus_depth_sweep
    from repro.errors import ReproError

    try:
        if args.corpus_command == "build":
            store = CorpusStore.open_or_create(args.corpus)
            specs = [WorkloadSpec(name, args.seed, args.scale)
                     for name in args.names]
            records = store.build_from_specs(
                specs, max_instructions=args.max_instructions)
            for record in records:
                print(f"recorded {record.name}: {record.events} events "
                      f"({record.calls} calls, {record.returns} returns)")
            return 0
        if args.corpus_command == "import":
            store = CorpusStore.open_or_create(args.corpus)
            record, stats = store.import_champsim(
                args.trace, name=args.name, limit=args.limit)
            print(f"imported {record.name}: {stats.records} records -> "
                  f"{record.events} events ({record.calls} calls, "
                  f"{record.returns} returns, "
                  f"{stats.unclassified} unclassified, "
                  f"{stats.dropped_tail} dropped tail, "
                  f"{stats.offset_mismatches} offset mismatches, "
                  f"{stats.backwards_returns} backwards returns)")
            return 0
        if args.corpus_command == "fetch":
            return _corpus_fetch(args)
        store = CorpusStore.open(args.corpus)
        if args.corpus_command == "info":
            print(format_table(
                ["shard", "source", "fmt", "events", "calls", "returns",
                 "checksum"],
                store.summary_rows(),
                title=f"Corpus {store.root} "
                      f"({len(store.manifest)} shards, "
                      f"{store.manifest.total_events} events)"))
            return 0
        if args.corpus_command == "verify":
            store.verify()
            print(f"corpus {store.root} ok: "
                  f"{len(store.manifest)} shards verified")
            return 0
        if args.corpus_command == "diffcheck":
            return _corpus_diffcheck(args, store)
        if args.corpus_command == "report":
            from repro.corpus import corpus_report

            executor = _make_executor(args)
            title, headers, rows = corpus_report(
                store, ras_entries=args.ras_entries, executor=executor,
                names=args.shards, engine=args.engine)
            print(format_table(headers, rows, title=title))
            _print_sweep_summary(executor)
            if args.json:
                return _write_json(args, title, headers, rows, executor)
            return 0
        # replay
        executor = _make_executor(args)
        title, headers, rows = corpus_depth_sweep(
            store, sizes=args.sizes,
            mechanism=RepairMechanism(args.mechanism),
            executor=executor, names=args.shards, engine=args.engine)
        print(format_table(headers, rows, title=title))
        _print_sweep_summary(executor)
        if args.json:
            return _write_json(args, title, headers, rows, executor)
        return 0
    except ReproError as error:
        print(f"repro-sim corpus: {error}", file=sys.stderr)
        return 1


def _corpus_fetch(args: argparse.Namespace) -> int:
    from repro.corpus import (
        CorpusStore,
        TraceSetManifest,
        check_manifest,
        fetch_and_build,
    )
    from repro.errors import ReproError

    if args.check_manifest:
        manifest = check_manifest(args.manifest)
        print(f"manifest ok: {manifest.name} "
              f"({len(manifest.traces)} traces)")
        return 0
    if args.corpus is None:
        print("repro-sim corpus fetch: --corpus is required "
              "(or pass --check-manifest for offline validation)",
              file=sys.stderr)
        return 2
    manifest = TraceSetManifest.load(args.manifest)
    store = CorpusStore.open_or_create(args.corpus)
    try:
        records = fetch_and_build(
            manifest, store, dest_dir=args.dest, names=args.trace_names,
            jobs=args.jobs, limit=args.limit, progress=print)
    except ReproError as error:
        print(f"repro-sim corpus fetch: {error}", file=sys.stderr)
        return 1
    print(f"corpus {store.root}: {len(store.manifest)} shards "
          f"({len(records)} new from trace set {manifest.name!r})")
    return 0


def _corpus_diffcheck(args: argparse.Namespace, store) -> int:
    from repro.corpus import diff_corpus

    executor = _make_executor(args)
    reports = diff_corpus(
        store, ras_entries=args.ras_entries,
        mechanism=RepairMechanism(args.mechanism),
        executor=executor, names=args.shards)
    headers = ["shard", "events", "returns", "ours %", "reference %",
               "divergences"]
    rows: List[List[object]] = []
    for report in reports:
        rate = (lambda hits: None if report.returns == 0
                else round(100 * hits / report.returns, 2))
        rows.append([report.shard, report.events, report.returns,
                     rate(report.ours_hits), rate(report.reference_hits),
                     report.divergences])
    title = (f"Differential check ({args.mechanism} vs reference "
             f"ChampSim, {args.ras_entries}-entry RAS)")
    print(format_table(headers, rows, title=title))
    _print_sweep_summary(executor)
    diverging = [report for report in reports if not report.ok]
    for report in diverging:
        first = report.first_divergence or {}
        print(f"repro-sim corpus diffcheck: {report.shard}: "
              f"{report.divergences} divergences; first at event "
              f"{first.get('event')}: ours={first.get('ours')} "
              f"reference={first.get('reference')}", file=sys.stderr)
    if args.report:
        payload = {
            "command": "corpus diffcheck",
            "mechanism": args.mechanism,
            "ras_entries": args.ras_entries,
            "ok": not diverging,
            "reports": [report.to_json_dict() for report in reports],
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"diff report written to {args.report}", file=sys.stderr)
    if args.json:
        status = _write_json(args, title, headers, rows, executor)
        if status:
            return status
    return 1 if diverging else 0


def _make_executor(args: argparse.Namespace) -> SweepExecutor:
    cache = None if getattr(args, "no_cache", False) else ResultCache.default()
    return SweepExecutor(jobs=getattr(args, "jobs", None), cache=cache,
                         backend=getattr(args, "backend", None))


def _print_sweep_summary(executor: Optional[SweepExecutor]) -> None:
    """One stderr line with cache hits/misses, wall time, run id."""
    if executor is None or not telemetry.enabled():
        return
    line = executor.summary_line()
    if line:
        print(line, file=sys.stderr)


def _write_json(args: argparse.Namespace, title: str, headers, rows,
                executor: Optional[SweepExecutor] = None) -> int:
    payload = {
        "command": args.command,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "seed": getattr(args, "seed", None),
        "scale": getattr(args, "scale", None),
    }
    if executor is not None:
        payload["cache"] = executor.cache_stats()
        payload["wall_time_s"] = round(executor.wall_time_s, 6)
        if executor.run_ids:
            payload["run_ids"] = list(executor.run_ids)
    try:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
    except OSError as error:
        print(f"repro-sim: cannot write --json {args.json}: {error}",
              file=sys.stderr)
        return 1
    print(f"json written to {args.json}", file=sys.stderr)
    return 0


def _bench_command(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench import (
        DEFAULT_MIN_WALL_S,
        DEFAULT_TOLERANCE,
        BenchGateError,
        compare_against_baseline,
        load_baseline,
        render_report,
        write_baseline,
    )

    try:
        if args.bench_command == "snapshot":
            tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                         else args.tolerance)
            payload = write_baseline(args.out, args.baseline,
                                     tolerance=tolerance, note=args.note)
            print(f"baseline written to {args.baseline}: "
                  f"{len(payload['benches'])} benches at "
                  f"scale={payload['source']['scale']}, "
                  f"tolerance {tolerance:.0%}")
            return 0
        # compare
        baseline = load_baseline(args.baseline)
        tolerance = (float(baseline.get("tolerance", DEFAULT_TOLERANCE))
                     if args.tolerance is None else args.tolerance)
        min_wall = (DEFAULT_MIN_WALL_S if args.min_wall is None
                    else args.min_wall)
        checks = compare_against_baseline(
            baseline, args.out, tolerance=tolerance, min_wall_s=min_wall)
        print(render_report(checks, tolerance))
        failed = any(check.failed for check in checks)
        if args.json:
            payload = {
                "baseline": args.baseline,
                "tolerance": tolerance,
                "min_wall_s": min_wall,
                "failed": failed,
                "checks": [dataclasses.asdict(check) for check in checks],
            }
            try:
                with open(args.json, "w") as handle:
                    json.dump(payload, handle, indent=2)
                    handle.write("\n")
            except OSError as error:
                print(f"repro-sim: cannot write --json {args.json}: {error}",
                      file=sys.stderr)
                return 1
            print(f"json written to {args.json}", file=sys.stderr)
        return 1 if failed else 0
    except BenchGateError as error:
        print(f"repro-sim bench: {error}", file=sys.stderr)
        return 1


def _trace_resolve(ref: str, store) -> Optional[str]:
    """A trace id from a raw id, a run-id prefix, or a ledger index."""
    from repro.errors import ReproError
    from repro.obs.store import valid_trace_id

    if valid_trace_id(ref):
        try:
            if store.path(ref).exists():
                return ref
        except (ValueError, OSError):
            pass
    try:
        info = SimulationService(cache=None).run_entry(ref)
    except ReproError:
        return None
    trace_id = (info.get("entry") or {}).get("trace_id")
    return trace_id if valid_trace_id(trace_id) else None


def _trace_command(args: argparse.Namespace) -> int:
    from repro.obs import analysis
    from repro.obs.store import TraceStore

    store = TraceStore.at_cache_root(ResultCache.default().base_root)
    if args.trace_command == "list":
        rows = []
        for trace_id in store.trace_ids()[:max(1, args.limit)]:
            rollup = analysis.summarize(store.load(trace_id))
            rows.append([trace_id[:16], rollup["spans"],
                         rollup["processes"], rollup["wall_ms"]])
        if not rows:
            print(f"no traces recorded under {store.root}", file=sys.stderr)
            return 1
        print(format_table(["trace", "spans", "processes", "wall ms"], rows,
                           title=f"Traces at {store.root}"))
        return 0
    trace_id = _trace_resolve(args.ref, store)
    if trace_id is None:
        print(f"repro-sim trace: no trace for {args.ref!r} (is tracing "
              f"on? REPRO_TRACE=0 disables it)", file=sys.stderr)
        return 1
    if args.trace_command == "flame":
        from repro.obs.profile import render_flame
        profile = store.load_profile(trace_id)
        if not profile:
            print(f"repro-sim trace: no profile for {trace_id} "
                  f"(rerun with REPRO_PROFILE=1)", file=sys.stderr)
            return 1
        print(f"profile for trace {trace_id}")
        print(render_flame(profile.splitlines(), limit=args.top))
        return 0
    spans = store.load(trace_id)
    if not spans:
        print(f"repro-sim trace: trace {trace_id} is empty",
              file=sys.stderr)
        return 1
    if args.trace_command == "show":
        print(analysis.waterfall(spans, width=args.width))
        return 0
    if args.trace_command == "critical-path":
        info = analysis.critical_path(spans)
        rows = [[index, step["name"], step["ms"], step["pid"]]
                for index, step in enumerate(info["path"])]
        print(format_table(
            ["#", "span", "ms", "pid"], rows,
            title=f"Critical path of {trace_id[:16]}: "
                  f"{info['duration_ms']:.1f} of {info['trace_ms']:.1f} ms "
                  f"({info['coverage']:.1%})"))
        if args.json:
            try:
                with open(args.json, "w") as handle:
                    json.dump({"trace_id": trace_id, **info}, handle,
                              indent=2, default=str)
                    handle.write("\n")
            except OSError as error:
                print(f"repro-sim: cannot write --json {args.json}: "
                      f"{error}", file=sys.stderr)
                return 1
            print(f"json written to {args.json}", file=sys.stderr)
        return 0
    # export
    out = args.out or f"trace-{trace_id[:12]}.json"
    try:
        with open(out, "w") as handle:
            json.dump(analysis.chrome_trace(spans), handle, default=str)
            handle.write("\n")
    except OSError as error:
        print(f"repro-sim trace: cannot write {out}: {error}",
              file=sys.stderr)
        return 1
    print(f"chrome trace written to {out} "
          f"({len(spans)} spans; open in Perfetto)")
    return 0


def _cluster_command(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.log import logger

    try:
        if args.cluster_command == "coordinator":
            from repro.cluster import DEFAULT_LEASE_TIMEOUT_S, Coordinator
            lease = (DEFAULT_LEASE_TIMEOUT_S if args.lease_timeout is None
                     else args.lease_timeout)
            coordinator = Coordinator(
                bind=args.bind,
                cache=None if args.no_cache else ResultCache.default(),
                lease_timeout_s=lease)
            # scripts parse this exact line for the URL, so it stays in
            # the event string (json mode carries it the same way)
            logger("coordinator").info(
                f"listening at {coordinator.url} (lease timeout {lease:g}s)")
            try:
                coordinator.serve_forever()
            except KeyboardInterrupt:
                pass
            return 0
        if args.cluster_command == "worker":
            from repro.cluster import run_worker
            stats = run_worker(
                args.coordinator, name=args.name,
                cache=None if args.no_cache else "default",
                max_jobs=args.max_jobs)
            logger("worker").info(
                "done", **{name: value
                           for name, value in sorted(stats.items())})
            return 0
        if args.cluster_command == "status":
            from repro.cluster import ClusterClient
            client = ClusterClient(args.coordinator)
            if args.prom:
                print(client.metricz(), end="")
                return 0
            status = client.status()
            rows = [[name, value] for name, value
                    in sorted((status.get("counts") or {}).items())]
            rows += [["queue depth", status.get("queue_depth")],
                     ["active leases", status.get("active_leases")],
                     ["workers alive", status.get("workers_alive")],
                     ["draining", status.get("draining")]]
            metrics = status.get("metrics")
            if isinstance(metrics, dict):
                rows.append(["metrics", ", ".join(
                    f"{len(metrics.get(section) or {})} {section}"
                    for section in ("counters", "gauges", "rates",
                                    "histograms"))])
            print(format_table(["stat", "value"], rows,
                               title=f"Coordinator {status.get('url')}"))
            _print_fleet_table(status.get("workers") or {})
            if args.json:
                try:
                    with open(args.json, "w") as handle:
                        json.dump(status, handle, indent=2, default=str)
                        handle.write("\n")
                except OSError as error:
                    print(f"repro-sim: cannot write --json {args.json}: "
                          f"{error}", file=sys.stderr)
                    return 1
                print(f"json written to {args.json}", file=sys.stderr)
            return 0
        # submit: the stack-depth sweep through an external coordinator
        executor = SweepExecutor(
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache.default(),
            backend="cluster", coordinator_url=args.coordinator)
        title, headers, rows = table_builders.fig_stack_depth(
            names=args.names, sizes=args.sizes,
            mechanism=RepairMechanism(args.mechanism),
            seed=args.seed, scale=args.scale, executor=executor)
        print(format_table(headers, rows, title=title))
        _print_sweep_summary(executor)
        if args.json:
            return _write_json(args, title, headers, rows, executor)
        return 0
    except ReproError as error:
        print(f"repro-sim cluster: {error}", file=sys.stderr)
        return 1


def _print_fleet_table(workers: dict) -> None:
    """Per-worker attribution table (cluster status / runs show)."""
    if not workers:
        return
    rows = [[name,
             info.get("jobs"),
             info.get("leases"),
             info.get("failures"),
             round(float(info.get("wall_time_s") or 0.0), 3)]
            for name, info in sorted(workers.items())]
    print(format_table(["worker", "jobs", "leases", "failures", "wall s"],
                       rows, title="Fleet utilisation"))


def _runs_command(args: argparse.Namespace) -> int:
    from repro.errors import ReproError

    # The ledger read API lives in the service core so `repro-sim runs`
    # and `GET /v1/runs` render the same data (docs/service.md).
    service = SimulationService(cache=None)
    try:
        if args.runs_command == "list":
            (title, headers, rows), entries = service.runs_table(
                limit=args.limit, path=args.ledger)
            if not entries:
                print(f"no runs recorded at {service.ledger(args.ledger).path}",
                      file=sys.stderr)
                return 1
            print(format_table(headers, rows, title=title))
            if args.json:
                return _write_json(args, title, headers, rows)
            return 0
        if args.runs_command == "show":
            info = service.run_entry(args.ref, path=args.ledger)
            entry = info["entry"]
            integrity = "ok" if info["integrity_ok"] else "MISMATCH"
            rows = []
            for key in sorted(entry):
                if key in ("metrics", "cluster"):
                    continue  # each gets its own table below
                value = entry[key]
                if key == "configs":
                    value = ",".join(str(f)[:12] for f in value)
                elif key == "code":
                    value = str(value)[:12]
                elif isinstance(value, (dict, list)):
                    value = json.dumps(value, default=str)
                rows.append([key, value])
            rows.append(["integrity", f"content hash {integrity}"])
            print(format_table(
                ["field", "value"], rows,
                title=f"Run {entry.get('run_id')}"))
            metrics = (entry.get("metrics") or {}).get("counters") or {}
            if metrics:
                print(format_table(
                    ["metric", "value"],
                    [[name, value] for name, value in metrics.items()],
                    title="Metrics (counters)"))
            cluster = entry.get("cluster") or {}
            if cluster:
                rows = [[name, value] for name, value
                        in sorted((cluster.get("counts") or {}).items())]
                rows += [["coordinator", cluster.get("coordinator")],
                         ["embedded", cluster.get("embedded")],
                         ["sweep submitted", cluster.get("submitted")],
                         ["sweep unfinished", cluster.get("unfinished")]]
                print(format_table(["stat", "value"], rows,
                                   title="Cluster scheduling"))
                _print_fleet_table(cluster.get("workers") or {})
            if args.json:
                try:
                    with open(args.json, "w") as handle:
                        json.dump(info, handle, indent=2, default=str)
                        handle.write("\n")
                except OSError as error:
                    print(f"repro-sim: cannot write --json {args.json}: "
                          f"{error}", file=sys.stderr)
                    return 1
                print(f"json written to {args.json}", file=sys.stderr)
            return 0
        # compare
        diff = service.compare_runs(args.a, args.b, path=args.ledger)
        field_rows = []
        for field, delta in diff["fields"].items():
            shown_a, shown_b = delta["a"], delta["b"]
            if field == "configs":
                shown_a = ",".join(f[:12] for f in (delta["a"] or []))
                shown_b = ",".join(f[:12] for f in (delta["b"] or []))
            elif field == "code":
                shown_a = str(shown_a)[:12]
                shown_b = str(shown_b)[:12]
            elif isinstance(shown_a, (dict, list)) \
                    or isinstance(shown_b, (dict, list)):
                shown_a = json.dumps(shown_a, default=str)
                shown_b = json.dumps(shown_b, default=str)
            field_rows.append([field, shown_a, shown_b])
        title = f"Runs {diff['a']} vs {diff['b']}"
        if field_rows:
            print(format_table(["field", "a", "b"], field_rows,
                               title=f"{title}: config delta"))
        else:
            print(f"{title}: identical configuration")
        metric_rows = [
            [name, values["a"], values["b"], values["delta"]]
            for name, values in diff["metrics"].items()
            if values["delta"] or values["a"] != values["b"]
            or name.startswith(("cache.", "headline.", "wall_time"))
        ]
        if metric_rows:
            print(format_table(["metric", "a", "b", "delta"], metric_rows,
                               title=f"{title}: metric delta"))
        if args.json:
            try:
                with open(args.json, "w") as handle:
                    json.dump(diff, handle, indent=2, default=str)
                    handle.write("\n")
            except OSError as error:
                print(f"repro-sim: cannot write --json {args.json}: {error}",
                      file=sys.stderr)
                return 1
            print(f"json written to {args.json}", file=sys.stderr)
        return 0
    except ReproError as error:
        print(f"repro-sim runs: {error}", file=sys.stderr)
        return 1


def _serve_command(args: argparse.Namespace) -> int:
    from repro.cluster.coordinator import parse_bind
    from repro.errors import ReproError
    from repro.service import ServiceServer, TenantLimiter, serve

    try:
        host, port = parse_bind(args.bind)
        service = SimulationService(
            cache=None if args.no_cache else "default",
            jobs=args.jobs, backend=args.backend,
            coordinator_url=args.coordinator)
        limiter = TenantLimiter(rate_per_s=args.rate, burst=args.burst,
                                quota=args.quota)
        server = ServiceServer(service, host=host, port=port,
                               max_concurrency=args.max_concurrency,
                               limiter=limiter)
        serve(server)
        return 0
    except ReproError as error:
        print(f"repro-sim serve: {error}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _fix_names(args)
    if getattr(args, "no_telemetry", False):
        # scope the opt-out to this invocation: main() is re-entrant in
        # tests and long-lived embedding processes
        with telemetry.disabled():
            return _dispatch(args)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "corpus":
        return _corpus_command(args)
    if args.command == "runs":
        return _runs_command(args)
    if args.command == "trace":
        return _trace_command(args)
    if args.command == "cluster":
        return _cluster_command(args)
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command in SWEEPS:
        # Table commands run through the service core, so the CLI and
        # the HTTP API are two frontends over the same calls; the
        # executor still carries this invocation's scheduling flags.
        from repro.errors import ServiceError
        try:
            request = normalize_request({
                "sweep": args.command, "names": args.names,
                "seed": args.seed, "scale": args.scale,
            })
        except ServiceError as error:
            print(f"repro-sim {args.command}: {error}", file=sys.stderr)
            return 1
        executor = _make_executor(args)
        outcome = SimulationService(cache=None).run_sweep(
            request, executor=executor)
        print(format_table(outcome.headers, outcome.rows,
                           title=outcome.title))
        _print_sweep_summary(executor)
        if args.json:
            return _write_json(args, outcome.title, outcome.headers,
                               outcome.rows, executor)
        return 0
    if args.command == "table2":
        print(build_table2(args.names, seed=args.seed, scale=args.scale))
        return 0
    if args.command == "corruption":
        from repro.analysis import CorruptionAnalyzer
        from repro.analysis.corruption import CATEGORIES
        rows = []
        for name in args.names:
            program = build_workload(name, seed=args.seed, scale=args.scale)
            breakdown = CorruptionAnalyzer(
                program, baseline_config().predictor).run()
            row = [name, breakdown.returns]
            for category in CATEGORIES:
                fraction = breakdown.fraction(category)
                row.append(None if fraction is None
                           else round(100 * fraction, 2))
            rows.append(row)
        print(format_table(
            ["benchmark", "returns"] + [f"{c} %" for c in CATEGORIES],
            rows, title="Corruption-cause breakdown of returns"))
        return 0
    if args.command == "return-predictors":
        from repro.analysis import compare_return_predictors
        rows = []
        columns = None
        for name in args.names:
            program = build_workload(name, seed=args.seed, scale=args.scale)
            comparison = compare_return_predictors(program)
            if columns is None:
                columns = sorted(comparison.accuracy)
            row = [name, comparison.returns]
            row.extend(
                None if comparison.accuracy[c] is None
                else round(100 * comparison.accuracy[c], 2)
                for c in columns
            )
            rows.append(row)
        print(format_table(
            ["benchmark", "returns"] + [f"{c} %" for c in (columns or [])],
            rows, title="Return prediction: RAS vs indirect predictors"))
        return 0
    if args.command == "run":
        return _run_command(args)
    if args.command == "parity":
        return _parity_command(args)
    if args.command == "disasm":
        program = build_workload(args.benchmark, seed=args.seed,
                                 scale=args.scale)
        print(program.disassemble(count=args.count))
        return 0
    if args.command == "smt":
        from repro.smt import SmtFrontEndSim
        programs = [
            build_workload(args.benchmark, seed=args.seed + i,
                           scale=args.scale)
            for i in range(args.threads)
        ]
        rows = []
        for per_thread in (False, True):
            sim = SmtFrontEndSim(
                programs, baseline_config().predictor,
                per_thread_stacks=per_thread)
            result = sim.run()
            rows.append([
                "per-thread" if per_thread else "shared",
                result.instructions,
                result.returns,
                None if result.return_accuracy is None
                else round(100 * result.return_accuracy, 2),
            ])
        print(format_table(
            ["stacks", "instructions", "returns", "return acc %"],
            rows,
            title=f"SMT {args.threads}x {args.benchmark}"))
        return 0
    if args.command == "report":
        from repro.core.report import build_report
        executor = _make_executor(args)
        text = build_report(
            names=args.names, seed=args.seed, scale=args.scale,
            full=args.full,
            progress=lambda section: print(f"... {section}",
                                           file=sys.stderr),
            executor=executor,
        )
        _print_sweep_summary(executor)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
