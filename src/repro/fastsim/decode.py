"""Per-program static decode tables for the fast cycle-level engines.

The reference pipelines (:mod:`repro.pipeline`, :mod:`repro.multipath`)
re-derive per-instruction facts on every dispatch: ``source_regs`` and
``dest_reg`` rebuild operand tuples, ``exec_latency`` probes a dict, and
:func:`repro.emu.exec_core.execute` walks a ~30-arm ``if`` chain to find
the opcode's semantics. All of that is a pure function of the *static*
instruction, so the fast engines hoist it out of the per-cycle loop:
one :class:`DecodeTable` per :class:`~repro.isa.program.Program` holds
flat, index-parallel columns (``is_control``, ``dest``, sources,
latency, ...) plus two precomputed **function tables** — one closure
per static instruction that performs the instruction's architectural
effect with the operand fields already bound. Executing instruction
``i`` is then a single indexed call, with no decode work left inside
the engine's inner loop.

Two closure families exist because the two pipeline models speculate
differently:

* :attr:`DecodeTable.exec_fns` — single-path semantics: register and
  memory writes apply immediately against a flat register list and a
  sparse memory dict, logging undo records *bit-identical* to
  :meth:`repro.emu.machine_state.MachineState.write_reg` /
  ``write_mem`` so recovery rewinds restore exactly the same state.
* :attr:`DecodeTable.exec_fns_mp` — multipath semantics: register
  writes log undo records against the path's private register file,
  loads read through a caller-supplied forwarding function, and stores
  *capture* their value for commit-time application instead of writing
  memory (mirroring ``repro.multipath.cpu._PathState``).

Tables are memoised per ``Program`` object (programs are immutable and
shared via the workload build cache), so a sweep of many configs over
one workload decodes once.

Parity note: every closure replicates one arm of
:func:`repro.emu.exec_core.execute` exactly — same masking, same
signedness, same undo record layout. The differential harness in
:mod:`repro.fastsim.parity` holds that line.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.emu.machine_state import MASK64, SIGN_BIT
from repro.isa.opcodes import ControlClass, Opcode, REG_RA, WORD_SIZE
from repro.isa.program import Program
from repro.pipeline.inflight import dest_reg, exec_latency, source_regs

#: Single-path exec closure: ``f(regs, memory, undo)`` applies the
#: instruction and returns ``(next_pc, taken, mem_address)``.
ExecFn = Callable[[List[int], Dict[int, int], list], Tuple[int, bool, Optional[int]]]

#: Multipath exec closure: ``f(regs, load_fn, undo)`` returns
#: ``(next_pc, taken, mem_address, store_value)``; stores are captured,
#: never applied (the multipath LSQ buffers them until commit).
ExecFnMp = Callable[
    [List[int], Callable[[int], int], list],
    Tuple[int, bool, Optional[int], Optional[int]],
]


def _signed(value: int) -> int:
    return value - (1 << 64) if value & SIGN_BIT else value


# ----------------------------------------------------------------------
# Single-path closure builders (immediate register/memory writes with
# MachineState-identical undo records).

def _build_exec(inst, pc: int) -> ExecFn:
    op = inst.opcode
    ft = pc + WORD_SIZE
    rd, rs, rt, imm, target = inst.rd, inst.rs, inst.rt, inst.imm, inst.target

    # Each closure below inlines write_reg semantics (r0 hard-wired,
    # undo logs the old value) rather than calling a helper: one call
    # frame per executed instruction is measurable at engine scale.
    if op is Opcode.ADDI:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] + imm) & MASK64
            return ft, False, None
    elif op is Opcode.LI:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = imm & MASK64
            return ft, False, None
    elif op is Opcode.ANDI:
        masked = imm & MASK64

        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] & masked) & MASK64
            return ft, False, None
    elif op is Opcode.XORI:
        masked = imm & MASK64

        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] ^ masked) & MASK64
            return ft, False, None
    elif op is Opcode.SLLI:
        shift = imm & 63

        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] << shift) & MASK64
            return ft, False, None
    elif op is Opcode.SRLI:
        shift = imm & 63

        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] >> shift) & MASK64
            return ft, False, None
    elif op is Opcode.ADD:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] + regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.SUB:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] - regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.AND:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] & regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.OR:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] | regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.XOR:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] ^ regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.SLL:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] << (regs[rt] & 63)) & MASK64
            return ft, False, None
    elif op is Opcode.SRL:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] >> (regs[rt] & 63)) & MASK64
            return ft, False, None
    elif op is Opcode.SLT:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = 1 if _signed(regs[rs]) < _signed(regs[rt]) else 0
            return ft, False, None
    elif op is Opcode.MUL:
        def fn(regs, mem, undo):
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (regs[rs] * regs[rt]) & MASK64
            return ft, False, None
    elif op is Opcode.LOAD:
        def fn(regs, mem, undo):
            address = (regs[rs] + imm) & MASK64
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = (mem.get(address, 0)) & MASK64
            return ft, False, address
    elif op is Opcode.STORE:
        def fn(regs, mem, undo):
            address = (regs[rs] + imm) & MASK64
            existed = address in mem
            undo.append(("m", address, mem[address] if existed else 0, existed))
            mem[address] = regs[rt] & MASK64
            return ft, False, address
    elif op is Opcode.BEQZ:
        def fn(regs, mem, undo):
            taken = regs[rs] == 0
            return (target if taken else ft), taken, None
    elif op is Opcode.BNEZ:
        def fn(regs, mem, undo):
            taken = regs[rs] != 0
            return (target if taken else ft), taken, None
    elif op is Opcode.BLTZ:
        def fn(regs, mem, undo):
            taken = _signed(regs[rs]) < 0
            return (target if taken else ft), taken, None
    elif op is Opcode.BGEZ:
        def fn(regs, mem, undo):
            taken = _signed(regs[rs]) >= 0
            return (target if taken else ft), taken, None
    elif op is Opcode.J:
        def fn(regs, mem, undo):
            return target, True, None
    elif op is Opcode.JAL:
        def fn(regs, mem, undo):
            undo.append(("r", REG_RA, regs[REG_RA]))
            regs[REG_RA] = ft & MASK64
            return target, True, None
    elif op is Opcode.JR:
        def fn(regs, mem, undo):
            return regs[rs], True, None
    elif op is Opcode.JALR:
        def fn(regs, mem, undo):
            computed = regs[rs]
            undo.append(("r", REG_RA, regs[REG_RA]))
            regs[REG_RA] = ft & MASK64
            return computed, True, None
    elif op is Opcode.RET:
        def fn(regs, mem, undo):
            return regs[REG_RA], True, None
    else:  # NOP / HALT: no architectural effect beyond the PC
        def fn(regs, mem, undo):
            return ft, False, None
    return fn


# ----------------------------------------------------------------------
# Multipath closure builders (stores captured, loads forwarded).

def _build_exec_mp(inst, pc: int) -> ExecFnMp:
    op = inst.opcode
    ft = pc + WORD_SIZE
    rd, rs, rt, imm, target = inst.rd, inst.rs, inst.rt, inst.imm, inst.target

    if op is Opcode.LOAD:
        def fn(regs, load, undo):
            address = (regs[rs] + imm) & MASK64
            if rd:
                undo.append(("r", rd, regs[rd]))
                regs[rd] = load(address) & MASK64
            return ft, False, address, None
        return fn
    if op is Opcode.STORE:
        def fn(regs, load, undo):
            address = (regs[rs] + imm) & MASK64
            return ft, False, address, regs[rt] & MASK64
        return fn
    # Every other opcode touches registers only, so the single-path
    # closure applies verbatim; adapt its signature.
    base = _build_exec(inst, pc)

    def fn(regs, load, undo, _base=base):
        next_pc, taken, _ = _base(regs, None, undo)
        return next_pc, taken, None, None
    return fn


# ----------------------------------------------------------------------
# The table.

class DecodeTable:
    """Index-parallel static columns + function tables for one program.

    Column ``i`` describes the instruction at byte address
    ``i * WORD_SIZE``. Numeric columns use ``-1`` for "absent".
    """

    __slots__ = (
        "program", "size", "text_limit",
        "is_control", "control", "is_call", "is_memory", "is_load",
        "is_store", "is_mul", "is_halt", "dest", "src1", "src2",
        "latency", "exec_fns", "exec_fns_mp",
    )

    def __init__(self, program: Program) -> None:
        self.program = program
        text = program.text
        n = len(text)
        self.size = n
        self.text_limit = n * WORD_SIZE
        self.is_control: List[bool] = [False] * n
        self.control: List[ControlClass] = [ControlClass.NOT_CONTROL] * n
        self.is_call: List[bool] = [False] * n
        self.is_memory: List[bool] = [False] * n
        self.is_load: List[bool] = [False] * n
        self.is_store: List[bool] = [False] * n
        self.is_mul: List[bool] = [False] * n
        self.is_halt: List[bool] = [False] * n
        self.dest: List[int] = [-1] * n
        self.src1: List[int] = [-1] * n
        self.src2: List[int] = [-1] * n
        self.latency: List[int] = [1] * n
        self.exec_fns: List[ExecFn] = [None] * n  # type: ignore[list-item]
        self.exec_fns_mp: List[ExecFnMp] = [None] * n  # type: ignore[list-item]
        for i, inst in enumerate(text):
            pc = i * WORD_SIZE
            control = inst.control
            self.control[i] = control
            self.is_control[i] = control is not ControlClass.NOT_CONTROL
            self.is_call[i] = control.is_call
            self.is_load[i] = inst.opcode is Opcode.LOAD
            self.is_store[i] = inst.opcode is Opcode.STORE
            self.is_memory[i] = self.is_load[i] or self.is_store[i]
            self.is_mul[i] = inst.opcode is Opcode.MUL
            self.is_halt[i] = inst.opcode is Opcode.HALT
            dest = dest_reg(inst)
            self.dest[i] = -1 if dest is None else dest
            sources = source_regs(inst)
            if sources:
                self.src1[i] = sources[0]
                if len(sources) > 1:
                    self.src2[i] = sources[1]
            self.latency[i] = exec_latency(inst)
            self.exec_fns[i] = _build_exec(inst, pc)
            self.exec_fns_mp[i] = _build_exec_mp(inst, pc)


#: Program -> DecodeTable memo. Keyed on object identity (programs are
#: immutable and memoised by the workload build cache) and weak so a
#: dropped program frees its table.
_TABLES: "weakref.WeakKeyDictionary[Program, DecodeTable]" = (
    weakref.WeakKeyDictionary())


def decode_table(program: Program) -> DecodeTable:
    """The (memoised) static decode table for ``program``."""
    table = _TABLES.get(program)
    if table is None:
        table = DecodeTable(program)
        _TABLES[program] = table
    return table
