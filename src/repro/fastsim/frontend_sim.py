"""The fast front-end simulator."""

from __future__ import annotations

from typing import Optional

from repro.bpred.predictor import FrontEndPredictor
from repro.config.machine import BranchPredictorConfig
from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import EmulationError
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.isa.program import Program
from repro.stats import StatGroup


class FastSimResult:
    """Prediction-quality summary plus a first-order cycle estimate."""

    def __init__(self, group: StatGroup, base_cpi: float, penalty: float) -> None:
        self.group = group
        self.base_cpi = base_cpi
        self.penalty = penalty

    @property
    def instructions(self) -> int:
        return self.group["instructions"].value  # type: ignore[attr-defined]

    @property
    def mispredictions(self) -> int:
        return self.group["mispredictions"].value  # type: ignore[attr-defined]

    @property
    def return_accuracy(self) -> Optional[float]:
        return self.group["return_accuracy"].value  # type: ignore[attr-defined]

    @property
    def cond_accuracy(self) -> Optional[float]:
        return self.group["cond_accuracy"].value  # type: ignore[attr-defined]

    @property
    def estimated_cycles(self) -> float:
        """Additive penalty model: base CPI plus a fixed charge per
        misprediction. Crude by design — shapes, not absolutes."""
        return self.instructions * self.base_cpi + self.mispredictions * self.penalty

    @property
    def estimated_ipc(self) -> float:
        cycles = self.estimated_cycles
        return self.instructions / cycles if cycles else 0.0

    def counter(self, name: str) -> int:
        if name in self.group:
            return self.group[name].value  # type: ignore[attr-defined]
        return 0

    def __repr__(self) -> str:
        return (
            f"FastSimResult(n={self.instructions}, "
            f"mispred={self.mispredictions}, est_ipc={self.estimated_ipc:.3f})"
        )


class FastFrontEndSim:
    """Correct-path emulation + bounded wrong-path replay.

    Args:
        program: the workload.
        predictor_config: front-end configuration (Table 1 subset).
        wrong_path_instructions: how many instructions the wrong path
            fetches before the misprediction resolves. Approximates
            (resolution latency x fetch width) of the cycle model.
        branch_penalty: cycles charged per misprediction in the
            estimate.
        base_cpi: cycles per instruction when prediction is perfect.
    """

    def __init__(
        self,
        program: Program,
        predictor_config: Optional[BranchPredictorConfig] = None,
        wrong_path_instructions: int = 16,
        branch_penalty: float = 8.0,
        base_cpi: float = 0.75,
        max_instructions: int = 50_000_000,
    ) -> None:
        if wrong_path_instructions < 0:
            raise ValueError("wrong_path_instructions must be >= 0")
        self.program = program
        self.frontend = FrontEndPredictor(
            predictor_config or BranchPredictorConfig())
        self.wrong_path_instructions = wrong_path_instructions
        self.branch_penalty = branch_penalty
        self.base_cpi = base_cpi
        self.max_instructions = max_instructions

        #: Architectural state after :meth:`run` (None before).
        self.final_state: Optional[MachineState] = None
        self.stats = StatGroup("fastsim")
        self._instructions = self.stats.counter("instructions")
        self._mispredictions = self.stats.counter("mispredictions")
        self._wrong_path_fetched = self.stats.counter("wrong_path_fetched")
        self._wrong_path_calls = self.stats.counter(
            "wrong_path_calls", "RAS pushes performed on wrong paths")
        self._wrong_path_returns = self.stats.counter(
            "wrong_path_returns", "RAS pops performed on wrong paths")

    def _walk_wrong_path(self, start_pc: int) -> None:
        """Fetch down the predicted-but-wrong path, corrupting the RAS.

        Control flow follows *predictions* (this is a pure front-end
        walk — no functional execution, exactly what a fetch engine does
        before the offending branch resolves).
        """
        program = self.program
        frontend = self.frontend
        pc = start_pc
        pending = []
        for _ in range(self.wrong_path_instructions):
            if not program.in_text(pc):
                break
            inst = program.fetch(pc)
            self._wrong_path_fetched.increment()
            if inst.opcode.value == "halt":
                break
            if inst.is_control:
                prediction = frontend.predict(pc, inst)
                pending.append(prediction)
                if inst.control.is_call:
                    self._wrong_path_calls.increment()
                elif inst.control is ControlClass.RETURN:
                    self._wrong_path_returns.increment()
                pc = prediction.target
            else:
                pc += WORD_SIZE
        # The walk's own shadow slots die with the squash.
        for prediction in pending:
            frontend.release(prediction)

    def run(self) -> FastSimResult:
        """Run the program to completion (or the instruction cap)."""
        program = self.program
        frontend = self.frontend
        state = MachineState(pc=program.entry, initial_memory=program.data)
        pc = program.entry
        executed = 0
        while True:
            if executed >= self.max_instructions:
                raise EmulationError(
                    f"fastsim watchdog: {self.max_instructions} instructions")
            inst = program.fetch(pc)
            prediction = None
            if inst.is_control:
                prediction = frontend.predict(pc, inst)
            outcome = execute(inst, pc, state)
            executed += 1
            self._instructions.increment()
            if outcome.is_halt:
                break
            if prediction is not None:
                if prediction.target != outcome.next_pc:
                    self._mispredictions.increment()
                    self._walk_wrong_path(prediction.target)
                    frontend.repair(prediction)
                # Resolution == commit in this model: train immediately.
                frontend.train_commit(
                    pc, inst, outcome.taken, outcome.next_pc, prediction)
                frontend.release(prediction)
            pc = outcome.next_pc
        self.final_state = state
        return self._finalize()

    def _finalize(self) -> FastSimResult:
        group = self.stats
        for name in ("return_accuracy", "cond_accuracy", "indirect_accuracy"):
            source = self.frontend.stats[name]
            group.rate(name).record_many(source.hits, source.events)
        ras = self.frontend.ras
        if ras is not None:
            group.counter("ras_overflows").increment(ras.stats["overflows"].value)
            group.counter("ras_underflows").increment(ras.stats["underflows"].value)
        return FastSimResult(group, self.base_cpi, self.branch_penalty)
