"""Fast, prediction-only simulation.

A classic trace-driven front-end model with wrong-path replay: the
correct path is emulated functionally, predictor state is exercised in
program order, and each misprediction triggers a bounded walk down the
*predicted* (wrong) path during which calls and returns corrupt the
return-address stack — the first-order effect the paper studies —
followed by checkpoint repair. Roughly an order of magnitude faster
than the cycle model; used for large parameter sweeps (stack-depth
sensitivity) and as a cross-check of the cycle model's hit-rate trends
(ablation A3).

:mod:`repro.fastsim.batch` applies the same philosophy to recorded
traces: shards are decoded block-at-a-time into flat columns and
replayed with branch-class dispatch hoisted out of the inner loop,
bit-identical to the streaming evaluator but several times faster (the
executor's ``"batch"`` engine; see docs/performance.md).
"""

from repro.fastsim.batch import (
    EventBatch,
    decoder_backend,
    iter_event_batches,
    replay_batches,
    replay_batches_multi,
    replay_shard_batched,
    replay_shard_batched_multi,
)
from repro.fastsim.frontend_sim import FastFrontEndSim, FastSimResult

__all__ = [
    "EventBatch",
    "FastFrontEndSim",
    "FastSimResult",
    "decoder_backend",
    "iter_event_batches",
    "replay_batches",
    "replay_batches_multi",
    "replay_shard_batched",
    "replay_shard_batched_multi",
]
