"""Fast, prediction-only simulation.

A classic trace-driven front-end model with wrong-path replay: the
correct path is emulated functionally, predictor state is exercised in
program order, and each misprediction triggers a bounded walk down the
*predicted* (wrong) path during which calls and returns corrupt the
return-address stack — the first-order effect the paper studies —
followed by checkpoint repair. Roughly an order of magnitude faster
than the cycle model; used for large parameter sweeps (stack-depth
sensitivity) and as a cross-check of the cycle model's hit-rate trends
(ablation A3).
"""

from repro.fastsim.frontend_sim import FastFrontEndSim, FastSimResult

__all__ = ["FastFrontEndSim", "FastSimResult"]
