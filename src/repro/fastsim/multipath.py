"""Fast multipath cycle-level engine.

A drop-in counterpart of :class:`repro.multipath.cpu.MultipathCPU`
producing bit-identical counters, rebuilt around the same four levers
as the columnar single-path engine (:mod:`repro.fastsim.cycle`):

* **Hoisted decode.** All static per-instruction facts and the
  execution semantics come from the per-program
  :class:`~repro.fastsim.decode.DecodeTable` — the multipath closure
  family (``exec_fns_mp``) captures stores instead of writing memory
  and reads loads through the store-forwarding path, exactly like the
  reference ``_PathState`` adapter, with no per-dispatch decode work.
* **Event-driven work lists.** The reference scans the whole RUU every
  cycle for issue and writeback candidates and walks it backwards for
  every load. Here dispatched-but-unissued entries live in a ``pending``
  list, issued-but-incomplete entries in an ``inflight`` list (with the
  earliest completion cycle cached), and in-flight stores in a
  per-address forwarding index — so each stage touches only entries
  that can possibly act.
* **Quiescent-cycle fast-forward.** A cycle in which no stage acted
  cannot differ from the next one until some scheduled event (an
  in-flight completion, an IFQ head becoming ready, an I-cache fill)
  arrives, so the engine jumps straight to the earliest such event.
  The fetch round-robin offset advances by the skipped cycle count and
  the path-prune cadence (every 512 cycles) is preserved, keeping the
  shared-bandwidth interleaving and end-of-run path census — and hence
  every counter — bit-identical.
* **Unchanged cold paths.** Forking, selective squash, fork
  resolution, writer-map rebuilds and path pruning replicate the
  reference logic structurally: they are rare, subtle, and not worth
  a representation change.

Path state stays in :class:`~repro.multipath.path.PathContext` objects
(the ancestry/visibility machinery is shared with the reference), and
the per-entry record is a slim ``__slots__`` row instead of
:class:`~repro.pipeline.inflight.InflightInstruction`.

The differential harness in :mod:`repro.fastsim.parity` checks this
engine against the reference across every repair mechanism, stack
size, and stack organisation.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.bpred.confidence import JrsConfidenceEstimator
from repro.bpred.predictor import FrontEndPredictor
from repro.caches.hierarchy import MemoryHierarchy
from repro.config.machine import MachineConfig
from repro.emu.machine_state import MASK64
from repro.errors import SimulationError
from repro.fastsim.decode import decode_table
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.isa.program import Program
from repro.multipath.path import PathContext
from repro.multipath.stacks import StackOrganizer
from repro.pipeline.results import SimResult
from repro.stats import StatGroup

_DEADLOCK_LIMIT = 20_000

#: Path-prune cadence, in cycles (must match MultipathCPU.run).
_PRUNE_PERIOD = 512


class _Entry:
    """One RUU row (the fast engine's InflightInstruction)."""

    __slots__ = (
        "seq", "pc", "ii", "next_pc", "taken", "prediction", "undo",
        "deps", "dest", "mem_address", "is_load", "is_store",
        "store_value", "dispatched_cycle", "issued", "complete_cycle",
        "completed", "squashed", "mispredicted", "path", "fork_child",
    )

    def __init__(self, seq, pc, ii, prediction, dispatched_cycle, path):
        self.seq = seq
        self.pc = pc
        self.ii = ii
        self.next_pc = 0
        self.taken = False
        self.prediction = prediction
        self.undo: List = []
        self.deps: List["_Entry"] = []
        self.dest: Optional[int] = None
        self.mem_address: Optional[int] = None
        self.is_load = False
        self.is_store = False
        self.store_value: Optional[int] = None
        self.dispatched_cycle = dispatched_cycle
        self.issued = False
        self.complete_cycle = -1
        self.completed = False
        self.squashed = False
        self.mispredicted = False
        self.path = path
        self.fork_child: Optional[PathContext] = None


class _Fetched:
    """One IFQ slot (pc, decoded index, prediction, readiness)."""

    __slots__ = ("pc", "ii", "prediction", "ready_cycle", "forked_child")

    def __init__(self, pc, ii, prediction, ready_cycle):
        self.pc = pc
        self.ii = ii
        self.prediction = prediction
        self.ready_cycle = ready_cycle
        self.forked_child: Optional[PathContext] = None


class FastMultipathCPU:
    """Work-list re-expression of the multipath machine.

    Same constructor shape as :class:`~repro.multipath.cpu.MultipathCPU`
    minus the commit hook (which needs per-instruction objects), same
    :class:`~repro.pipeline.results.SimResult`, bit-identical counters.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles

        predictor_config = self.config.predictor
        # The facade must not own a stack of its own: stacks are handed
        # out by the organizer (shared or per path) and passed per call.
        facade_config = dataclasses.replace(predictor_config,
                                            ras_enabled=False)
        self.frontend = FrontEndPredictor(facade_config)
        self.organizer = StackOrganizer(
            self.config.multipath.stack_organization, predictor_config)
        self.confidence = JrsConfidenceEstimator(
            self.config.multipath.confidence_entries,
            self.config.multipath.confidence_threshold,
            self.config.multipath.confidence_max,
        )
        self.memory = MemoryHierarchy(self.config.memory)
        self.decode = decode_table(program)

        #: Architectural memory: committed stores only.
        self._arch_memory: Dict[int, int] = dict(program.data)
        root = PathContext(
            0, program.entry, [0] * 32, parent=None,
            ras=self.organizer.root_stack(),
        )
        self._paths: List[PathContext] = [root]
        self._next_path_id = 1
        self._ruu: Deque[_Entry] = deque()
        self._lsq_count = 0
        self._seq = 0
        self.cycle = 0
        self.done = False
        self.final_regs: Optional[List[int]] = None
        self._rr_offset = 0
        self._fetch_line_shift = (
            self.config.memory.l1i.line_bytes.bit_length() - 1)

        # Work lists (see module docstring).
        self._pending: List[_Entry] = []
        self._inflight: List[_Entry] = []
        self._min_complete = 0
        #: address -> in-flight stores to it, oldest first (seq order).
        self._store_map: Dict[int, List[_Entry]] = {}
        #: Path bound for the duration of one exec-closure call.
        self._load_path: Optional[PathContext] = None

        # Raw counters; promoted into a StatGroup at _finalize.
        self._committed = 0
        self._fetched = 0
        self._dispatched = 0
        self._squashed = 0
        self._bubbles = 0
        self._forks = 0
        self._fork_saved = 0
        self._mispredictions = 0
        self._mispred_return = 0

    # ------------------------------------------------------------------
    # Helpers.

    def _alive_paths(self) -> List[PathContext]:
        return [p for p in self._paths if p.alive]

    def _load(self, address: int) -> int:
        """Architectural memory + store forwarding for the bound path.

        Equivalent to the reference's reversed RUU walk: the forwarding
        index holds exactly the in-flight stores, in seq (= RUU) order,
        so scanning one address bucket youngest-first visits the same
        candidates in the same order.
        """
        bucket = self._store_map.get(address)
        if bucket:
            path = self._load_path
            for entry in reversed(bucket):
                if not entry.squashed and path.can_see(entry.path,
                                                       entry.seq):
                    return entry.store_value  # type: ignore[return-value]
        return self._arch_memory.get(address & MASK64, 0)

    def _older_visible_store(self, load: _Entry) -> Optional[_Entry]:
        """Youngest program-order-older in-flight store ``load`` can see."""
        bucket = self._store_map.get(load.mem_address)
        if bucket:
            lseq = load.seq
            path = load.path
            for entry in reversed(bucket):
                if (entry.seq < lseq and not entry.squashed
                        and path.can_see(entry.path, entry.seq)):
                    return entry
        return None

    def _drop_store(self, entry: _Entry) -> None:
        bucket = self._store_map.get(entry.mem_address)
        if bucket:
            if bucket[0] is entry:
                bucket.pop(0)
            else:
                try:
                    bucket.remove(entry)
                except ValueError:
                    pass
            if not bucket:
                del self._store_map[entry.mem_address]

    def _release_ifq(self, path: PathContext) -> None:
        """Drop a path's IFQ, releasing slots and pending fork children."""
        for fetched in path.ifq:
            if fetched.prediction is not None:
                self.frontend.release(fetched.prediction)
            if fetched.forked_child is not None:
                self._kill_subtree(fetched.forked_child)
        path.ifq.clear()

    def _kill_subtree(self, root: PathContext) -> None:
        """Mark ``root`` and every descendant dead; bubble their entries."""
        victims = [p for p in self._paths if p.is_descendant_of(root)]
        for victim in victims:
            if victim.dead:
                continue
            victim.alive = False
            victim.lost = True
            victim.dead = True
            self._release_ifq(victim)
        victim_set = set(id(v) for v in victims)
        for entry in self._ruu:
            if not entry.squashed and id(entry.path) in victim_set:
                self._squash_entry(entry, rewind=False)

    def _squash_entry(self, entry: _Entry, rewind: bool) -> None:
        if rewind and entry.undo:
            # Applies to the owning path's private register file.
            for record in reversed(entry.undo):
                entry.path.regs[record[1]] = record[2]
        entry.undo.clear()
        entry.squashed = True
        if entry.is_store:
            self._drop_store(entry)
        if entry.prediction is not None:
            self.frontend.release(entry.prediction)
            entry.prediction = None
        if entry.fork_child is not None:
            self._kill_subtree(entry.fork_child)
            entry.fork_child = None
        self._squashed += 1

    def _squash_after(self, path: PathContext, seq: int) -> None:
        """Squash ``path``'s entries younger than ``seq`` and every path
        forked from that region (but nothing forked earlier)."""
        self._release_ifq(path)
        for entry in reversed(self._ruu):  # youngest first: ordered rewind
            if entry.squashed or entry.seq <= seq:
                continue
            if entry.path is path:
                self._squash_entry(entry, rewind=True)
            # Descendants are handled through fork_child kills above.
        # Kill descendants forked from the squashed region (zombies
        # included: their continuation subtrees hang below them).
        for other in self._paths:
            if (other is not path and not other.dead
                    and other.is_descendant_of(path)
                    and other.origin_seq > seq):
                self._kill_subtree(other)
        self._rebuild_writer_map(path)

    def _rebuild_writer_map(self, path: PathContext) -> None:
        """Recompute reg -> youngest visible in-flight producer."""
        writers: Dict[int, _Entry] = {}
        for entry in self._ruu:
            if (entry.squashed or entry.dest is None or entry.completed):
                continue
            if path.can_see(entry.path, entry.seq) or entry.path is path:
                writers[entry.dest] = entry
        path.last_writer = writers

    def _resolve_fork(self, entry: _Entry) -> None:
        child = entry.fork_child
        entry.fork_child = None
        prediction = entry.prediction
        assert child is not None and prediction is not None
        if child.dead:
            # The child's subtree was killed by an older recovery; fall
            # back to a plain misprediction if the kept side was wrong.
            if entry.mispredicted:
                self._mispredictions += 1
                self.frontend.repair(prediction)
                self.frontend.release(prediction)
                self._recover_in_path(entry)
            else:
                self.frontend.release(prediction)
            return
        self.frontend.release(prediction)
        if not entry.mispredicted:
            # Predicted side (the parent's own stream) was right.
            self._kill_subtree(child)
            return
        # The explored side was right: the parent's post-fork stream and
        # anything forked from it die; the child is the continuation.
        self._fork_saved += 1
        path = entry.path
        # Temporarily detach the child so the region squash spares it.
        child_origin = child.origin_seq
        saved_parent = child.parent
        child.parent = None
        self._squash_after(path, entry.seq)
        child.parent = saved_parent
        child.origin_seq = child_origin
        # The parent path stops here: its continuation lives in `child`.
        path.alive = False
        path.lost = True
        path.fetch_halted = True
        # No RAS restore: see StackOrganizer.repair_on_fork_resolution.

    def _recover_in_path(self, branch: _Entry) -> None:
        path = branch.path
        self._squash_after(path, branch.seq)
        path.alive = True
        path.lost = False
        path.fetch_pc = branch.next_pc
        path.fetch_halted = False
        path.fetch_stalled_until = self.cycle + 1
        path.last_fetch_line = None

    def _maybe_fork(self, path: PathContext, fetched: _Fetched) -> None:
        """Fork at a low-confidence conditional branch, context permitting."""
        decode = self.decode
        if decode.control[fetched.ii] is not ControlClass.COND_BRANCH:
            return
        if len(self._alive_paths()) >= self.config.multipath.max_paths:
            return
        if not self.confidence.is_low_confidence(fetched.pc):
            return
        prediction = fetched.prediction
        assert prediction is not None
        inst = self.program.text[fetched.ii]
        alternate = (fetched.pc + WORD_SIZE if prediction.taken
                     else inst.target)
        if alternate is None or not self.program.in_text(alternate):
            return
        child = PathContext(
            self._next_path_id, alternate, regs=None, parent=path,
            ras=self.organizer.stack_for_fork(path),
        )
        child.dispatch_enabled = False
        child.alternate_target = alternate
        self._next_path_id += 1
        self._paths.append(child)
        fetched.forked_child = child
        self._forks += 1

    def _prune_paths(self) -> None:
        """Collapse drained zombies out of ancestry chains, drop corpses.

        Identical to the reference (and run at the same cycles): the
        end-of-run path census feeds the per-path RAS overflow counters,
        so even the prune *cadence* is part of the parity contract.
        """
        inflight = {id(entry.path) for entry in self._ruu}
        for path in self._paths:
            while True:
                parent = path.parent
                if (parent is None or parent.alive
                        or id(parent) in inflight):
                    break
                path.origin_seq = (
                    parent.origin_seq if path.origin_seq == -1
                    else min(path.origin_seq, parent.origin_seq))
                path.parent = parent.parent
        referenced = set()
        for path in self._paths:
            if path.alive or id(path) in inflight:
                node = path
                while node is not None:
                    referenced.add(id(node))
                    node = node.parent
        self._paths = [p for p in self._paths if id(p) in referenced]

    # ------------------------------------------------------------------
    # Driver.

    def run(self) -> SimResult:
        """Simulate until HALT commits (or a configured limit).

        One monolithic loop over the five stages; stage order and
        semantics replicate ``MultipathCPU.step``/``run`` exactly, with
        the work lists and the quiescent-cycle fast-forward as the only
        (unobservable) differences.
        """
        core = self.config.core
        fetch_width = core.fetch_width
        decode_width = core.decode_width
        issue_width = core.issue_width
        commit_width = core.commit_width
        ruu_cap = core.ruu_size
        ifq_cap = core.ifq_size
        lsq_cap = core.lsq_size
        n_alus, n_muls, n_ports = (core.int_alus, core.int_multipliers,
                                   core.memory_ports)
        frontend_lag = 1 + core.frontend_depth

        program = self.program
        text = program.text
        in_text = program.in_text
        decode = self.decode
        d_control = decode.is_control
        d_class = decode.control
        d_memory = decode.is_memory
        d_load = decode.is_load
        d_store = decode.is_store
        d_mul = decode.is_mul
        d_halt = decode.is_halt
        d_dest = decode.dest
        d_src1 = decode.src1
        d_src2 = decode.src2
        d_lat = decode.latency
        exec_fns = decode.exec_fns_mp

        memory_h = self.memory
        fetch_line_shift = self._fetch_line_shift
        l1i_hit = self.config.memory.l1i.hit_latency
        access_data = memory_h.access_data
        fetch_line = memory_h.fetch_instruction
        frontend = self.frontend
        predict = frontend.predict
        repair = frontend.repair
        release = frontend.release
        train = frontend.train_commit
        confidence_update = self.confidence.update
        arch_memory = self._arch_memory
        load_fn = self._load
        ruu = self._ruu
        store_map = self._store_map
        pending = self._pending
        inflight = self._inflight
        min_complete = self._min_complete

        COND = ControlClass.COND_BRANCH
        RET = ControlClass.RETURN

        cycle = self.cycle
        seq = self._seq
        lsq_count = self._lsq_count
        committed = self._committed
        fetched_n = self._fetched
        dispatched = self._dispatched
        mispredictions = self._mispredictions
        mispred_return = self._mispred_return
        max_cycles = self.max_cycles
        max_insts = self.max_instructions
        done = self.done
        last_commit_cycle = 0
        last_committed = committed

        while not done:
            if max_cycles is not None and cycle >= max_cycles:
                break
            if max_insts is not None and committed >= max_insts:
                break
            activity = False

            # ---- commit (in order, shared over paths) ----------------
            budget = commit_width
            while budget and ruu:
                entry = ruu[0]
                if entry.squashed:
                    ruu.popleft()
                    if entry.is_load or entry.is_store:
                        lsq_count -= 1
                    if entry.is_store:
                        self._drop_store(entry)
                    self._bubbles += 1
                    budget -= 1
                    activity = True
                    continue
                if not entry.completed:
                    break
                ruu.popleft()
                activity = True
                if entry.is_load or entry.is_store:
                    lsq_count -= 1
                if entry.is_store:
                    self._drop_store(entry)
                    arch_memory[entry.mem_address] = entry.store_value
                ii = entry.ii
                if d_control[ii]:
                    train(entry.pc, text[ii], entry.taken, entry.next_pc,
                          entry.prediction)
                    if d_class[ii] is COND:
                        confidence_update(entry.pc, not entry.mispredicted)
                path = entry.path
                if path.last_writer.get(entry.dest) is entry:
                    del path.last_writer[entry.dest]
                committed += 1
                if d_halt[ii]:
                    done = True
                    self.final_regs = list(path.regs)
                    break
                budget -= 1

            if not done:
                # ---- writeback / fork resolution / recovery ----------
                if inflight and min_complete <= cycle:
                    resolvable = []
                    keep = []
                    for entry in inflight:
                        if entry.complete_cycle <= cycle:
                            resolvable.append(entry)
                        else:
                            keep.append(entry)
                    if resolvable:
                        activity = True
                        inflight = keep
                        resolvable.sort(key=_entry_seq)
                        for entry in resolvable:
                            if entry.squashed:
                                entry.completed = True
                                continue
                            entry.completed = True
                            prediction = entry.prediction
                            if prediction is None:
                                continue
                            if entry.fork_child is not None:
                                self.cycle = cycle
                                self._mispredictions = mispredictions
                                self._resolve_fork(entry)
                                mispredictions = self._mispredictions
                            elif entry.mispredicted:
                                mispredictions += 1
                                if d_class[entry.ii] is RET:
                                    mispred_return += 1
                                repair(prediction)
                                release(prediction)
                                self.cycle = cycle
                                self._recover_in_path(entry)
                            else:
                                release(prediction)
                        if inflight:
                            min_complete = inflight[0].complete_cycle
                            for entry in inflight:
                                if entry.complete_cycle < min_complete:
                                    min_complete = entry.complete_cycle
                        else:
                            min_complete = 0

                # ---- issue (program order, resource constrained) -----
                if pending:
                    budget = issue_width
                    alus, muls, ports = n_alus, n_muls, n_ports
                    still = []
                    hold = still.append
                    for idx, entry in enumerate(pending):
                        if budget == 0:
                            still.extend(pending[idx:])
                            break
                        if entry.squashed:
                            continue  # bubbles never issue; prune
                        if entry.dispatched_cycle >= cycle:
                            hold(entry)
                            continue
                        blocked = False
                        for dep in entry.deps:
                            if not dep.completed:
                                blocked = True
                                break
                        if blocked:
                            hold(entry)
                            continue
                        ii = entry.ii
                        if d_load[ii]:
                            if ports == 0:
                                hold(entry)
                                continue
                            store = self._older_visible_store(entry)
                            if store is not None and not store.completed:
                                hold(entry)
                                continue
                            latency = 1 if store is not None else (
                                access_data(entry.mem_address))
                            ports -= 1
                        elif d_store[ii]:
                            if ports == 0:
                                hold(entry)
                                continue
                            access_data(entry.mem_address, is_store=True)
                            latency = 1
                            ports -= 1
                        elif d_mul[ii]:
                            if muls == 0:
                                hold(entry)
                                continue
                            muls -= 1
                            latency = d_lat[ii]
                        else:
                            if alus == 0:
                                hold(entry)
                                continue
                            alus -= 1
                            latency = d_lat[ii]
                        entry.issued = True
                        cc = cycle + latency
                        entry.complete_cycle = cc
                        if not inflight or cc < min_complete:
                            min_complete = cc
                        inflight.append(entry)
                        budget -= 1
                        activity = True
                    pending = still

                # ---- dispatch (round-robin over ready paths) ---------
                budget = decode_width
                candidates = [
                    p for p in self._paths
                    if p.alive and p.dispatch_enabled and p.ifq
                    and p.ifq[0].ready_cycle <= cycle
                ]
                if candidates:
                    start = self._rr_offset % len(candidates)
                    order = candidates[start:] + candidates[:start]
                    progress = True
                    full = False
                    while budget and progress and not full:
                        progress = False
                        for path in order:
                            if budget == 0:
                                break
                            ifq = path.ifq
                            if not ifq or ifq[0].ready_cycle > cycle:
                                continue
                            if len(ruu) >= ruu_cap:
                                full = True
                                break
                            fetched = ifq[0]
                            ii = fetched.ii
                            if d_memory[ii] and lsq_count >= lsq_cap:
                                continue
                            ifq.popleft()
                            # -- dispatch one (execute, rename, fork) --
                            seq += 1
                            undo = []
                            self._load_path = path
                            next_pc, taken, mem_addr, store_value = (
                                exec_fns[ii](path.regs, load_fn, undo))
                            entry = _Entry(seq, fetched.pc, ii,
                                           fetched.prediction, cycle, path)
                            entry.next_pc = next_pc
                            entry.taken = taken
                            entry.undo = undo
                            entry.mem_address = mem_addr
                            prediction = fetched.prediction
                            if prediction is not None and not d_halt[ii]:
                                entry.mispredicted = (
                                    prediction.target != next_pc)
                            last_writer = path.last_writer
                            src = d_src1[ii]
                            if src >= 0:
                                writer = last_writer.get(src)
                                if (writer is not None
                                        and not writer.completed
                                        and not writer.squashed):
                                    entry.deps.append(writer)
                                src = d_src2[ii]
                                if src >= 0:
                                    writer = last_writer.get(src)
                                    if (writer is not None
                                            and not writer.completed
                                            and not writer.squashed):
                                        entry.deps.append(writer)
                            dest = d_dest[ii]
                            if dest >= 0:
                                entry.dest = dest
                                last_writer[dest] = entry
                            if d_memory[ii]:
                                lsq_count += 1
                                if d_store[ii]:
                                    entry.is_store = True
                                    entry.store_value = store_value
                                    bucket = store_map.get(mem_addr)
                                    if bucket is None:
                                        store_map[mem_addr] = [entry]
                                    else:
                                        bucket.append(entry)
                                else:
                                    entry.is_load = True
                            child = fetched.forked_child
                            if child is not None and child.alive:
                                # The fork's register snapshot exists now.
                                child.regs = list(path.regs)
                                child.origin_seq = entry.seq
                                child.dispatch_enabled = True
                                child.last_writer = dict(last_writer)
                                entry.fork_child = child
                            ruu.append(entry)
                            pending.append(entry)
                            dispatched += 1
                            budget -= 1
                            progress = True
                            activity = True

                # ---- fetch (round-robin over alive paths) ------------
                paths = self._alive_paths()
                if paths:
                    self._rr_offset += 1
                    start = self._rr_offset % len(paths)
                    order = paths[start:] + paths[:start]
                    budget = fetch_width
                    for path in order:
                        if budget == 0:
                            break
                        if path.fetch_halted or cycle < path.fetch_stalled_until:
                            continue
                        ifq = path.ifq
                        while budget and len(ifq) < ifq_cap:
                            pc = path.fetch_pc
                            if not in_text(pc):
                                path.fetch_halted = True
                                break
                            line = pc >> fetch_line_shift
                            if line != path.last_fetch_line:
                                latency = fetch_line(pc)
                                path.last_fetch_line = line
                                activity = True  # I-cache state advanced
                                if latency > l1i_hit:
                                    path.fetch_stalled_until = cycle + latency
                                    break
                            ii = pc // WORD_SIZE
                            prediction = None
                            next_pc = pc + WORD_SIZE
                            if d_control[ii]:
                                prediction = predict(pc, text[ii],
                                                     ras=path.ras)
                                next_pc = prediction.target
                            fetched = _Fetched(pc, ii, prediction,
                                               cycle + frontend_lag)
                            if prediction is not None:
                                self._maybe_fork(path, fetched)
                            ifq.append(fetched)
                            fetched_n += 1
                            path.fetch_pc = next_pc
                            budget -= 1
                            activity = True
                            if d_halt[ii]:
                                path.fetch_halted = True
                                break
                            if d_control[ii] and next_pc != pc + WORD_SIZE:
                                break  # stop this path at a taken transfer

            cycle += 1
            if committed != last_committed:
                last_committed = committed
                last_commit_cycle = cycle
            elif cycle - last_commit_cycle > _DEADLOCK_LIMIT:
                self.cycle = cycle
                self._store_counts(committed, fetched_n, dispatched,
                                   mispredictions, mispred_return)
                raise SimulationError(
                    f"multipath: no commit for {_DEADLOCK_LIMIT} cycles at "
                    f"cycle {cycle} (paths={self._paths!r})"
                )
            # Prune long-dead paths with no in-flight entries.
            if cycle % _PRUNE_PERIOD == 0:
                self._prune_paths()

            if not activity and not done:
                # ---- quiescent-cycle fast-forward --------------------
                # Nothing acted, so the machine replays this exact cycle
                # until the earliest scheduled event: an in-flight
                # completion, an IFQ head turning ready, or an I-cache
                # fill finishing. (A candidate already in the past means
                # the stage is capacity-blocked, which only a completion
                # unblocks — covered by min_complete.) The jump is
                # clamped to the deadlock deadline, the prune boundary,
                # and max_cycles, and the fetch round-robin offset
                # advances as if every skipped cycle had run.
                target = -1
                if inflight:
                    target = min_complete
                for path in self._paths:
                    if not path.alive:
                        continue
                    ifq = path.ifq
                    if ifq and path.dispatch_enabled:
                        ready = ifq[0].ready_cycle
                        if ready >= cycle and (target < 0 or ready < target):
                            target = ready
                    if (not path.fetch_halted and len(ifq) < ifq_cap
                            and path.fetch_stalled_until >= cycle
                            and (target < 0
                                 or path.fetch_stalled_until < target)):
                        target = path.fetch_stalled_until
                deadline = last_commit_cycle + _DEADLOCK_LIMIT + 1
                if target < 0 or target > deadline:
                    target = deadline
                boundary = (cycle // _PRUNE_PERIOD + 1) * _PRUNE_PERIOD
                if target > boundary:
                    target = boundary
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > cycle:
                    skipped = target - cycle
                    cycle = target
                    if self._alive_paths():
                        self._rr_offset += skipped
                    if cycle - last_commit_cycle > _DEADLOCK_LIMIT:
                        self.cycle = cycle
                        self._store_counts(committed, fetched_n, dispatched,
                                           mispredictions, mispred_return)
                        raise SimulationError(
                            f"multipath: no commit for {_DEADLOCK_LIMIT} "
                            f"cycles at cycle {cycle} "
                            f"(paths={self._paths!r})"
                        )
                    if cycle % _PRUNE_PERIOD == 0:
                        self._prune_paths()

        self.cycle = cycle
        self.done = done
        self._seq = seq
        self._lsq_count = lsq_count
        self._pending = pending
        self._inflight = inflight
        self._min_complete = min_complete
        self._store_counts(committed, fetched_n, dispatched,
                           mispredictions, mispred_return)
        return self._finalize()

    # ------------------------------------------------------------------

    def _store_counts(self, committed, fetched_n, dispatched,
                      mispredictions, mispred_return) -> None:
        self._committed = committed
        self._fetched = fetched_n
        self._dispatched = dispatched
        self._mispredictions = mispredictions
        self._mispred_return = mispred_return

    def _finalize(self) -> SimResult:
        """Promote raw counts into the reference engine's StatGroup shape."""
        group = self.stats = StatGroup("multipath_cpu")
        group.counter("cycles").increment(self.cycle)
        group.counter("committed").increment(self._committed)
        group.counter("fetched").increment(self._fetched)
        group.counter("dispatched").increment(self._dispatched)
        group.counter("squashed").increment(self._squashed)
        group.counter("bubbles_retired").increment(self._bubbles)
        group.counter("forks").increment(self._forks)
        group.counter(
            "fork_saved_mispredictions",
            "mispredictions whose other side was already executing",
        ).increment(self._fork_saved)
        group.counter("mispredictions").increment(self._mispredictions)
        group.counter("mispredictions_return").increment(self._mispred_return)
        for name in ("return_accuracy", "cond_accuracy", "indirect_accuracy"):
            source = self.frontend.stats[name]
            group.rate(name).record_many(source.hits, source.events)
        stacks = []
        if self.organizer.is_per_path:
            stacks = [p.ras for p in self._paths if p.ras is not None]
        elif self.organizer.root_stack() is not None:
            stacks = [self.organizer.root_stack()]
        overflow = sum(s.stats["overflows"].value for s in stacks)
        underflow = sum(s.stats["underflows"].value for s in stacks)
        group.counter("ras_overflows").increment(overflow)
        group.counter("ras_underflows").increment(underflow)
        return SimResult(group)


def _entry_seq(entry: _Entry) -> int:
    return entry.seq


def run_multipath_fast(
    program: Program,
    config: MachineConfig,
    max_instructions: Optional[int] = None,
) -> Tuple[SimResult, FastMultipathCPU]:
    """Run the fast multipath engine; returns ``(result, cpu)``.

    Mirrors :func:`repro.core.experiment.run_multipath` — same result
    type, bit-identical counters — at a multiple of the throughput.
    """
    cpu = FastMultipathCPU(program, config,
                           max_instructions=max_instructions)
    return cpu.run(), cpu
