"""The columnar single-path cycle engine: the replay playbook applied
to the execution-driven pipeline.

:class:`~repro.pipeline.cpu.SinglePathCPU` spends most of its wall time
on interpreter bookkeeping, not on the machine it models: every cycle
re-enters five stage methods, every fetched instruction allocates an
IFQ record, every dispatch allocates an RUU object plus operand tuples,
and every counter bump crosses a method call. This engine re-expresses
the *same machine* in a shape the interpreter executes quickly:

* **Columnar window state.** The IFQ and RUU are fixed-capacity ring
  buffers of index-parallel columns — numpy *structured arrays* when
  numpy is available, plain Python lists otherwise — so in-flight
  instructions are rows, not objects, and slots are reused instead of
  allocated. Prediction/undo references (Python objects) ride in
  parallel object columns. ``REPRO_CYCLE_BACKEND=python`` forces the
  stdlib backend (both are bit-identical; the parity suite runs both).
* **Hoisted dispatch.** All static per-instruction facts and the
  instruction semantics themselves come from the precomputed function
  tables of :mod:`repro.fastsim.decode`; RAS repair and shadow-slot
  release are bound to mechanism-specific callables once at
  construction, so the per-cycle loop contains no class dispatch.
* **Quiescent-cycle fast-forward.** Most cycles of the Table 1 machine
  commit nothing and change nothing (the window is waiting out a cache
  miss, fetch is stalled on an I-line, the IFQ head is still in the
  front-end pipe). When a cycle performs *no* state change, the engine
  computes the next cycle at which anything can happen (minimum over
  pending completion times, the IFQ head's ready cycle, and the fetch
  stall horizon) and jumps straight there, attributing every skipped
  cycle to the same stall bucket the reference would have — the
  skipped cycles are exactly the ones the reference burns in no-op
  stage walks.

Everything *behavioural* is shared with the reference engine, not
re-implemented: the front-end predictor facade (direction tables, BTB,
RAS + repair mechanisms, shadow checkpoints), the cache hierarchy, and
the undo-log record layout. Counters are therefore **bit-identical**
to :class:`~repro.pipeline.cpu.SinglePathCPU` for every repair
mechanism, stack size, and workload — enforced by
:mod:`repro.fastsim.parity` and ``tests/test_fastsim_cycle.py``, and
benchmarked by ``benchmarks/bench_cycle_throughput.py`` (>= 3x, gated
in CI; see docs/engines.md and docs/performance.md).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.bpred.predictor import FrontEndPredictor
from repro.caches.hierarchy import MemoryHierarchy
from repro.config.machine import MachineConfig
from repro.errors import SimulationError
from repro.fastsim.decode import decode_table
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.isa.program import Program
from repro.pipeline.results import SimResult
from repro.stats import StatGroup

try:  # optional accelerator; the stdlib backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_CYCLE_BACKEND
    _np = None

#: Mirrors repro.pipeline.cpu._DEADLOCK_LIMIT (same wedge semantics).
_DEADLOCK_LIMIT = 20_000

#: Stall-attribution bucket indices (see _finalize for the names).
_STALL_FRONTEND, _STALL_MEMORY, _STALL_EXECUTE = 0, 1, 2
_STALL_DEPENDENCY, _STALL_ISSUE = 3, 4


def cycle_backend() -> str:
    """Which window-state backend runs: ``"python"`` or ``"numpy"``.

    Unlike the batch replay decoder (where ``REPRO_BATCH_DECODER``
    defaults to numpy), the *default here is the stdlib list backend*:
    the cycle engine is a scalar event loop, and CPython list indexing
    beats numpy scalar access (even through memoryviews) for one-at-a-
    time reads and writes — measured ~3.2x vs ~2.4x over the reference
    engine on the Table 1 machine. ``REPRO_CYCLE_BACKEND=numpy`` opts
    into the ndarray-backed columns, which are bit-identical and exist
    as the cross-checking twin and the substrate for future vectorised
    stages. The two backends are interchangeable for every counter the
    parity harness compares, so this is a performance/debugging switch,
    not a behaviour switch.
    """
    choice = os.environ.get("REPRO_CYCLE_BACKEND", "python")
    if choice == "numpy" and _np is None:
        return "python"
    return choice


if _np is not None:
    #: One RUU row. Unsigned 64-bit fields (next_pc, mem) may hold any
    #: architectural word; signed fields are small bookkeeping values.
    _RUU_DTYPE = _np.dtype([
        ("seq", "<i8"), ("pc", "<i8"), ("inst", "<i8"),
        ("next_pc", "<u8"), ("mem", "<u8"),
        ("dispatched", "<i8"), ("complete", "<i8"),
        ("dep1", "<i8"), ("dep1_seq", "<i8"),
        ("dep2", "<i8"), ("dep2_seq", "<i8"),
        # Flags are full words, not "?": sub-word memoryview reads box
        # through struct format '?' and cost ~30% more per access than
        # 'q' in the scalar hot loop, and the window is tiny anyway.
        ("issued", "<i8"), ("completed", "<i8"), ("taken", "<i8"),
        ("misp", "<i8"), ("halt", "<i8"), ("mem_valid", "<i8"),
    ])
    _IFQ_DTYPE = _np.dtype([("pc", "<i8"), ("inst", "<i8"), ("ready", "<i8")])


class ColumnarCycleCPU:
    """Columnar re-expression of the Table 1 single-path machine.

    Drop-in counterpart of :class:`~repro.pipeline.cpu.SinglePathCPU`
    for the ``run()`` contract: same constructor shape (minus the
    commit hook, which needs per-instruction objects), same
    :class:`~repro.pipeline.results.SimResult`, bit-identical counters.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.backend = backend or cycle_backend()
        if self.backend not in ("numpy", "python"):
            raise ValueError(f"unknown cycle backend {self.backend!r}")
        if self.backend == "numpy" and _np is None:
            raise ValueError("numpy backend requested but numpy is missing")

        self.frontend = FrontEndPredictor(self.config.predictor)
        self.memory = MemoryHierarchy(self.config.memory)
        self.decode = decode_table(program)
        self.cycle = 0
        self.done = False

        # Architectural state (the single-path machine owns it outright;
        # this mirrors MachineState without the method-call layer).
        self.regs = [0] * 32
        self.mem = dict(program.data)

        core = self.config.core
        self._ruu_cap = core.ruu_size
        self._ifq_cap = core.ifq_size
        self._alloc_columns()

        # Hoisted per-mechanism dispatch: one attribute lookup at
        # construction instead of two per repair/release event.
        frontend = self.frontend
        self._predict = frontend.predict
        self._repair = frontend.repair
        self._release = frontend.release
        self._train = frontend.train_commit

        # Raw counters; promoted into a StatGroup at _finalize.
        self._committed = 0
        self._fetched = 0
        self._dispatched = 0
        self._squashed = 0
        self._mispredictions = 0
        self._mispred_cond = 0
        self._mispred_return = 0
        self._mispred_indirect = 0
        self._stalls = [0, 0, 0, 0, 0]

    def _alloc_columns(self) -> None:
        ruu_cap, ifq_cap = self._ruu_cap, self._ifq_cap
        if self.backend == "numpy":
            # One contiguous ndarray per _RUU_DTYPE field (a decomposed
            # structured array: same schema, column-major layout). The
            # hot loop indexes them through memoryviews, which return
            # native Python ints/bools — scalar reads as cheap as list
            # indexing, with no np.int64 boxing to leak into dict keys
            # or JSON-bound results.
            self._ruu = {name: _np.zeros(ruu_cap, dtype=_RUU_DTYPE[name])
                         for name in _RUU_DTYPE.names}
            self._ifq = {name: _np.zeros(ifq_cap, dtype=_IFQ_DTYPE[name])
                         for name in _IFQ_DTYPE.names}
            self._cols = {name: memoryview(arr)
                          for name, arr in self._ruu.items()}
            self._ifq_cols = {name: memoryview(arr)
                              for name, arr in self._ifq.items()}
        else:
            self._ruu = None
            self._ifq = None
            self._cols = {
                name: [0] * ruu_cap
                for name in ("seq", "pc", "inst", "next_pc", "mem",
                             "dispatched", "complete", "dep1", "dep1_seq",
                             "dep2", "dep2_seq")
            }
            for name in ("issued", "completed", "taken", "misp", "halt",
                         "mem_valid"):
                self._cols[name] = [False] * ruu_cap
            self._ifq_cols = {name: [0] * ifq_cap
                              for name in ("pc", "inst", "ready")}
        # Object columns are Python lists under both backends: they hold
        # Prediction references and undo logs, which arrays cannot.
        self._ruu_pred = [None] * ruu_cap
        self._ruu_undo = [None] * ruu_cap
        self._ifq_pred = [None] * ifq_cap

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Simulate until HALT commits (or a configured limit).

        One monolithic loop: stage order, per-stage semantics, stall
        attribution, and deadlock behaviour replicate
        ``SinglePathCPU.step``/``run`` exactly; see the module docstring
        for what is allowed to differ (nothing observable).
        """
        # -- bind everything hot to locals -----------------------------
        core = self.config.core
        fetch_width = core.fetch_width
        decode_width = core.decode_width
        issue_width = core.issue_width
        commit_width = core.commit_width
        ruu_cap, ifq_cap = self._ruu_cap, self._ifq_cap
        lsq_cap = core.lsq_size
        n_alus, n_muls, n_ports = (core.int_alus, core.int_multipliers,
                                   core.memory_ports)
        frontend_lag = 1 + core.frontend_depth

        program = self.program
        text = program.text
        decode = self.decode
        text_limit = decode.text_limit
        d_control = decode.is_control
        d_class = decode.control
        d_memory = decode.is_memory
        d_load = decode.is_load
        d_store = decode.is_store
        d_mul = decode.is_mul
        d_halt = decode.is_halt
        d_dest = decode.dest
        d_src1 = decode.src1
        d_src2 = decode.src2
        d_lat = decode.latency
        exec_fns = decode.exec_fns

        regs = self.regs
        mem = self.mem
        memory_h = self.memory
        fetch_line_shift = self.config.memory.l1i.line_bytes.bit_length() - 1
        l1i_hit = self.config.memory.l1i.hit_latency
        access_data = memory_h.access_data
        fetch_line = memory_h.fetch_instruction

        predict = self._predict
        repair = self._repair
        release = self._release
        train = self._train

        cols = self._cols
        r_seq = cols["seq"]
        r_pc = cols["pc"]
        r_inst = cols["inst"]
        r_next = cols["next_pc"]
        r_mem = cols["mem"]
        r_memv = cols["mem_valid"]
        r_disp = cols["dispatched"]
        r_comp = cols["complete"]
        r_dep1 = cols["dep1"]
        r_dep1s = cols["dep1_seq"]
        r_dep2 = cols["dep2"]
        r_dep2s = cols["dep2_seq"]
        r_issued = cols["issued"]
        r_done = cols["completed"]
        r_taken = cols["taken"]
        r_misp = cols["misp"]
        r_halt = cols["halt"]
        r_pred = self._ruu_pred
        r_undo = self._ruu_undo
        i_pc = self._ifq_cols["pc"]
        i_inst = self._ifq_cols["inst"]
        i_ready = self._ifq_cols["ready"]
        i_pred = self._ifq_pred

        COND = ControlClass.COND_BRANCH
        RET = ControlClass.RETURN

        # -- machine registers (scalars) --------------------------------
        cycle = 0
        seq = 0
        ruu_head = 0
        ruu_count = 0
        ifq_head = 0
        ifq_count = 0
        lsq_count = 0
        fetch_pc = program.entry
        fetch_stall = 0
        fetch_halted = False
        last_line = -1
        #: reg -> (slot, seq) of the youngest in-flight producer.
        writer_slot = [-1] * 32
        writer_seq = [0] * 32
        # Event-driven work-lists, so the per-cycle stages walk only the
        # entries that can possibly act rather than the whole window.
        # Entries are (slot, seq) pairs; a pair is dead (committed or
        # squashed) when the slot left the ring window or was reseeded
        # with a different seq, and dead pairs are pruned lazily.
        #: Dispatched-but-unissued entries, in program order.
        pending = []
        #: Issued-but-incomplete entries, plus the earliest completion.
        inflight = []
        incomplete = 0
        min_complete = 0
        #: address -> [(slot, seq)] of in-flight stores, oldest first
        #: (the LSQ forwarding index; seq order == program order).
        store_map = {}

        committed = self._committed
        fetched = self._fetched
        dispatched = self._dispatched
        squashed = self._squashed
        mispredictions = self._mispredictions
        mispred_cond = self._mispred_cond
        mispred_return = self._mispred_return
        mispred_indirect = self._mispred_indirect
        stalls = self._stalls

        max_cycles = self.max_cycles
        max_insts = self.max_instructions
        last_commit_cycle = 0
        last_committed = 0
        done = False

        while not done:
            if max_cycles is not None and cycle >= max_cycles:
                break
            if max_insts is not None and committed >= max_insts:
                break
            activity = False
            stall_bucket = -1

            # ---- commit (oldest first, up to commit_width) -----------
            budget = commit_width
            while budget and ruu_count and r_done[ruu_head]:
                slot = ruu_head
                ruu_head = ruu_head + 1 if ruu_head + 1 < ruu_cap else 0
                ruu_count -= 1
                ii = int(r_inst[slot])
                if d_control[ii]:
                    train(int(r_pc[slot]), text[ii], bool(r_taken[slot]),
                          int(r_next[slot]), r_pred[slot])
                dest = d_dest[ii]
                if (dest >= 0 and writer_slot[dest] == slot
                        and writer_seq[dest] == r_seq[slot]):
                    writer_slot[dest] = -1
                if d_memory[ii]:
                    lsq_count -= 1
                r_undo[slot] = None
                committed += 1
                activity = True
                if r_halt[slot]:
                    done = True
                    break
                budget -= 1
            if done:
                cycle += 1
                break

            if not activity:
                # ---- stall attribution (no commit this cycle) --------
                if ruu_count == 0:
                    stall_bucket = _STALL_FRONTEND
                else:
                    head = ruu_head
                    if r_issued[head]:
                        stall_bucket = (_STALL_MEMORY
                                        if d_memory[int(r_inst[head])]
                                        else _STALL_EXECUTE)
                    else:
                        d1, d2 = r_dep1[head], r_dep2[head]
                        blocked = (
                            (d1 >= 0 and r_seq[d1] == r_dep1s[head]
                             and not r_done[d1])
                            or (d2 >= 0 and r_seq[d2] == r_dep2s[head]
                                and not r_done[d2]))
                        stall_bucket = (_STALL_DEPENDENCY if blocked
                                        else _STALL_ISSUE)
                stalls[stall_bucket] += 1

            # ---- writeback (resolve completions, oldest first) -------
            if incomplete and min_complete <= cycle:
                if ruu_count:
                    resolvable = []
                    keep = []
                    for item in inflight:
                        slot, sq = item
                        if (r_seq[slot] != sq
                                or not (slot - ruu_head) % ruu_cap
                                < ruu_count):
                            continue  # squashed; prune
                        if r_comp[slot] <= cycle:
                            resolvable.append(slot)
                        else:
                            keep.append(item)
                    if len(resolvable) > 1:
                        # Program order (the reference walks the RUU).
                        resolvable.sort(key=r_seq.__getitem__)
                    for slot in resolvable:
                        r_done[slot] = True
                        activity = True
                        pred = r_pred[slot]
                        if pred is None:
                            continue
                        if r_misp[slot]:
                            mispredictions += 1
                            cclass = d_class[int(r_inst[slot])]
                            if cclass is COND:
                                mispred_cond += 1
                            elif cclass is RET:
                                mispred_return += 1
                            else:
                                mispred_indirect += 1
                            repair(pred)
                            release(pred)
                            # -- recovery: squash younger, redirect ----
                            for j in range(ifq_count):
                                fp = i_pred[(ifq_head + j) % ifq_cap]
                                if fp is not None:
                                    release(fp)
                            ifq_count = 0
                            branch_seq = r_seq[slot]
                            tail = (ruu_head + ruu_count) % ruu_cap
                            while ruu_count:
                                last = tail - 1 if tail else ruu_cap - 1
                                if r_seq[last] <= branch_seq:
                                    break
                                tail = last
                                ruu_count -= 1
                                undo = r_undo[last]
                                if undo:
                                    for rec in reversed(undo):
                                        if rec[0] == "r":
                                            regs[rec[1]] = rec[2]
                                        elif rec[3]:
                                            mem[rec[1]] = rec[2]
                                        else:
                                            mem.pop(rec[1], None)
                                r_undo[last] = None
                                fp = r_pred[last]
                                if fp is not None:
                                    release(fp)
                                li = int(r_inst[last])
                                if d_memory[li]:
                                    lsq_count -= 1
                                squashed += 1
                            for reg in range(32):
                                writer_slot[reg] = -1
                            wslot = ruu_head
                            for _ in range(ruu_count):
                                dest = d_dest[int(r_inst[wslot])]
                                if dest >= 0:
                                    writer_slot[dest] = wslot
                                    writer_seq[dest] = r_seq[wslot]
                                wslot = (wslot + 1 if wslot + 1 < ruu_cap
                                         else 0)
                            fetch_pc = int(r_next[slot])
                            fetch_halted = False
                            fetch_stall = cycle + 1
                            last_line = -1
                            break  # younger resolvables were squashed
                        release(pred)
                    # Rebuild the completion horizon; a recovery may
                    # have squashed some of the kept entries.
                    inflight = []
                    incomplete = 0
                    min_complete = 0
                    for item in keep:
                        slot, sq = item
                        if (r_seq[slot] != sq
                                or not (slot - ruu_head) % ruu_cap
                                < ruu_count):
                            continue
                        cc = r_comp[slot]
                        if not incomplete or cc < min_complete:
                            min_complete = cc
                        incomplete += 1
                        inflight.append(item)
                else:
                    inflight = []
                    incomplete = 0
                    min_complete = 0

            # ---- issue (program order, resource constrained) ---------
            if pending:
                budget = issue_width
                alus, muls, ports = n_alus, n_muls, n_ports
                still = []
                hold = still.append
                for idx, item in enumerate(pending):
                    if budget == 0:
                        still.extend(pending[idx:])
                        break
                    cur, sq = item
                    if (r_seq[cur] != sq
                            or not (cur - ruu_head) % ruu_cap < ruu_count):
                        continue  # squashed; prune
                    if r_disp[cur] >= cycle:
                        hold(item)
                        continue
                    d1 = r_dep1[cur]
                    if d1 >= 0 and r_seq[d1] == r_dep1s[cur] and not r_done[d1]:
                        hold(item)
                        continue
                    d2 = r_dep2[cur]
                    if d2 >= 0 and r_seq[d2] == r_dep2s[cur] and not r_done[d2]:
                        hold(item)
                        continue
                    ii = int(r_inst[cur])
                    if d_load[ii]:
                        if ports == 0:
                            hold(item)
                            continue
                        # Nearest older in-flight store to the same
                        # address, via the forwarding index (youngest
                        # first; dead entries pruned on the way).
                        addr = int(r_mem[cur])
                        store = -1
                        lst = store_map.get(addr)
                        if lst:
                            for i in range(len(lst) - 1, -1, -1):
                                s, ssq = lst[i]
                                if (r_seq[s] != ssq
                                        or not (s - ruu_head) % ruu_cap
                                        < ruu_count):
                                    del lst[i]
                                elif ssq < sq:
                                    store = s
                                    break
                            if not lst:
                                del store_map[addr]
                        if store >= 0 and not r_done[store]:
                            hold(item)
                            continue  # wait for the producing store
                        if store >= 0:
                            latency = 1  # LSQ store-to-load forwarding
                        else:
                            latency = access_data(addr)
                        ports -= 1
                    elif d_store[ii]:
                        if ports == 0:
                            hold(item)
                            continue
                        access_data(int(r_mem[cur]), is_store=True)
                        latency = 1
                        ports -= 1
                    elif d_mul[ii]:
                        if muls == 0:
                            hold(item)
                            continue
                        muls -= 1
                        latency = d_lat[ii]
                    else:
                        if alus == 0:
                            hold(item)
                            continue
                        alus -= 1
                        latency = d_lat[ii]
                    r_issued[cur] = True
                    cc = cycle + latency
                    r_comp[cur] = cc
                    if not incomplete or cc < min_complete:
                        min_complete = cc
                    incomplete += 1
                    inflight.append(item)
                    budget -= 1
                    activity = True
                pending = still

            # ---- dispatch (execute against live state, record undo) --
            budget = decode_width
            while budget and ifq_count and i_ready[ifq_head] <= cycle:
                if ruu_count >= ruu_cap:
                    break
                ii = int(i_inst[ifq_head])
                if d_memory[ii] and lsq_count >= lsq_cap:
                    break
                pc = int(i_pc[ifq_head])
                pred = i_pred[ifq_head]
                i_pred[ifq_head] = None
                ifq_head = ifq_head + 1 if ifq_head + 1 < ifq_cap else 0
                ifq_count -= 1
                seq += 1
                undo = []
                next_pc, taken, mem_addr = exec_fns[ii](regs, mem, undo)
                slot = (ruu_head + ruu_count) % ruu_cap
                ruu_count += 1
                r_seq[slot] = seq
                r_pc[slot] = pc
                r_inst[slot] = ii
                r_next[slot] = next_pc
                r_taken[slot] = taken
                r_disp[slot] = cycle
                r_issued[slot] = False
                r_done[slot] = False
                halt = d_halt[ii]
                r_halt[slot] = halt
                r_pred[slot] = pred
                r_undo[slot] = undo
                r_misp[slot] = (pred is not None and not halt
                                and pred.target != next_pc)
                if mem_addr is not None:
                    r_mem[slot] = mem_addr
                    r_memv[slot] = True
                else:
                    r_memv[slot] = False
                src = d_src1[ii]
                if src >= 0:
                    w = writer_slot[src]
                    if w >= 0 and r_seq[w] == writer_seq[src] and not r_done[w]:
                        r_dep1[slot] = w
                        r_dep1s[slot] = writer_seq[src]
                    else:
                        r_dep1[slot] = -1
                    src = d_src2[ii]
                    if src >= 0:
                        w = writer_slot[src]
                        if (w >= 0 and r_seq[w] == writer_seq[src]
                                and not r_done[w]):
                            r_dep2[slot] = w
                            r_dep2s[slot] = writer_seq[src]
                        else:
                            r_dep2[slot] = -1
                    else:
                        r_dep2[slot] = -1
                else:
                    r_dep1[slot] = -1
                    r_dep2[slot] = -1
                dest = d_dest[ii]
                if dest >= 0:
                    writer_slot[dest] = slot
                    writer_seq[dest] = seq
                if d_memory[ii]:
                    lsq_count += 1
                    if d_store[ii]:
                        bucket = store_map.get(mem_addr)
                        if bucket is None:
                            store_map[mem_addr] = [(slot, seq)]
                        else:
                            bucket.append((slot, seq))
                pending.append((slot, seq))
                dispatched += 1
                budget -= 1
                activity = True

            # ---- fetch (follow the predicted stream) -----------------
            if not fetch_halted and cycle >= fetch_stall:
                budget = fetch_width
                while budget and ifq_count < ifq_cap:
                    pc = fetch_pc
                    if not (0 <= pc < text_limit) or pc % WORD_SIZE:
                        # Wrong path wandered out of text; idle until
                        # the mispredicted branch resolves.
                        fetch_halted = True
                        break
                    line = pc >> fetch_line_shift
                    if line != last_line:
                        latency = fetch_line(pc)
                        last_line = line
                        activity = True  # I-cache state advanced
                        if latency > l1i_hit:
                            fetch_stall = cycle + latency
                            break
                    ii = pc // WORD_SIZE
                    if d_control[ii]:
                        pred = predict(pc, text[ii])
                        next_pc = pred.target
                    else:
                        pred = None
                        next_pc = pc + WORD_SIZE
                    slot = (ifq_head + ifq_count) % ifq_cap
                    i_pc[slot] = pc
                    i_inst[slot] = ii
                    i_ready[slot] = cycle + frontend_lag
                    i_pred[slot] = pred
                    ifq_count += 1
                    fetched += 1
                    fetch_pc = next_pc
                    budget -= 1
                    activity = True
                    if d_halt[ii]:
                        fetch_halted = True
                        break
                    if pred is not None and next_pc != pc + WORD_SIZE:
                        break  # stop at a (predicted-)taken transfer

            cycle += 1

            # ---- run-loop bookkeeping (commit tracking, deadlock) ----
            if committed != last_committed:
                last_committed = committed
                last_commit_cycle = cycle
            elif cycle - last_commit_cycle > _DEADLOCK_LIMIT:
                self._store_counts(
                    cycle, committed, fetched, dispatched, squashed,
                    mispredictions, mispred_cond, mispred_return,
                    mispred_indirect)
                raise SimulationError(
                    f"no commit for {_DEADLOCK_LIMIT} cycles at cycle "
                    f"{cycle} (pc={fetch_pc}, ruu={ruu_count}, "
                    f"ifq={ifq_count})"
                )

            # ---- quiescent fast-forward ------------------------------
            if not activity:
                target = -1
                if incomplete:
                    target = min_complete
                if ifq_count:
                    # `cycle` is already the *next* cycle to execute, so
                    # an event due exactly then must clamp the skip to a
                    # no-op (>=); a head ready strictly in the past means
                    # dispatch is blocked on window capacity, which only
                    # a completion (min_complete) can clear.
                    ready = i_ready[ifq_head]
                    if ready >= cycle and (target < 0 or ready < target):
                        target = ready
                if (not fetch_halted and ifq_count < ifq_cap
                        and fetch_stall >= cycle
                        and (target < 0 or fetch_stall < target)):
                    target = fetch_stall
                deadline = last_commit_cycle + _DEADLOCK_LIMIT + 1
                if target < 0 or target > deadline:
                    # Nothing will ever happen again: burn forward to
                    # the deadlock horizon, exactly as the reference
                    # engine does one no-op step at a time.
                    target = deadline
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > cycle:
                    # Each skipped cycle would have attributed the same
                    # stall bucket and changed nothing else.
                    stalls[stall_bucket] += int(target) - cycle
                    cycle = int(target)
                if cycle == deadline:
                    self._store_counts(
                        cycle, committed, fetched, dispatched, squashed,
                        mispredictions, mispred_cond, mispred_return,
                        mispred_indirect)
                    raise SimulationError(
                        f"no commit for {_DEADLOCK_LIMIT} cycles at cycle "
                        f"{cycle} (pc={fetch_pc}, ruu={ruu_count}, "
                        f"ifq={ifq_count})"
                    )

        self._store_counts(cycle, committed, fetched, dispatched, squashed,
                           mispredictions, mispred_cond, mispred_return,
                           mispred_indirect)
        self.done = done
        # Final front-end/window occupancy, exposed for diagnostics and
        # the parity harness (not part of the counter contract).
        self.debug_state = {
            "fetch_pc": fetch_pc, "fetch_stall": fetch_stall,
            "fetch_halted": fetch_halted, "ifq": ifq_count,
            "ruu": ruu_count, "seq": seq, "lsq": lsq_count,
            "ruu_rows": [
                (int(r_seq[s]), int(r_pc[s]), bool(r_issued[s]),
                 bool(r_done[s]),
                 int(r_comp[s]) if r_issued[s] else -1)
                for s in ((ruu_head + j) % ruu_cap
                          for j in range(ruu_count))
            ],
        }
        return self._finalize()

    # ------------------------------------------------------------------

    def _store_counts(self, cycle, committed, fetched, dispatched, squashed,
                      mispredictions, mispred_cond, mispred_return,
                      mispred_indirect) -> None:
        self.cycle = cycle
        self._committed = committed
        self._fetched = fetched
        self._dispatched = dispatched
        self._squashed = squashed
        self._mispredictions = mispredictions
        self._mispred_cond = mispred_cond
        self._mispred_return = mispred_return
        self._mispred_indirect = mispred_indirect

    def _finalize(self) -> SimResult:
        """Promote raw counts into the reference engine's StatGroup shape."""
        group = self.stats = StatGroup("cpu")
        group.counter("cycles").increment(self.cycle)
        group.counter("committed").increment(self._committed)
        group.counter("fetched").increment(self._fetched)
        group.counter("dispatched").increment(self._dispatched)
        group.counter("squashed").increment(self._squashed)
        group.counter("mispredictions").increment(self._mispredictions)
        group.counter("mispredictions_cond").increment(self._mispred_cond)
        group.counter("mispredictions_return").increment(self._mispred_return)
        group.counter("mispredictions_indirect").increment(
            self._mispred_indirect)
        for name, value in zip(
                ("stall_frontend", "stall_memory", "stall_execute",
                 "stall_dependency", "stall_issue"), self._stalls):
            group.counter(name).increment(value)
        for name in ("return_accuracy", "cond_accuracy", "indirect_accuracy"):
            source = self.frontend.stats[name]
            group.rate(name).record_many(source.hits, source.events)
        group.counter("returns_from_btb").increment(
            self.frontend.stats["returns_from_btb"].value)
        ras = self.frontend.ras
        if ras is not None:
            group.counter("ras_pushes").increment(ras.stats["pushes"].value)
            group.counter("ras_pops").increment(ras.stats["pops"].value)
            group.counter("ras_overflows").increment(
                ras.stats["overflows"].value)
            group.counter("ras_underflows").increment(
                ras.stats["underflows"].value)
        group.counter("l1i_misses").increment(
            self.memory.l1i.stats["misses"].value)
        group.counter("l1d_misses").increment(
            self.memory.l1d.stats["misses"].value)
        return SimResult(group)


def run_cycle_fast(
    program: Program,
    config: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[SimResult, ColumnarCycleCPU]:
    """Run the columnar single-path engine; returns ``(result, cpu)``.

    Mirrors :func:`repro.core.experiment.run_cycle` — same result type,
    bit-identical counters — at several times the throughput.
    """
    cpu = ColumnarCycleCPU(program, config, max_instructions=max_instructions,
                           backend=backend)
    return cpu.run(), cpu
