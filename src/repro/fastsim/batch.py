"""Batched trace replay: the corpus sweep hot path, vectorised.

The streaming evaluator in :mod:`repro.trace.replay` dispatches one
Python-level event at a time: every committed control transfer becomes
a :class:`~repro.trace.format.ControlFlowEvent` object, walks an
``Enum`` property or two, and crosses a ``lane.step`` call — fine for
correctness work, interpreter-bound for corpus sweeps. This module
replays the same shards block-at-a-time instead:

1. **Decode** — each zlib block of a v2 shard (or a pseudo-block slice
   of a v1 body) is decoded straight into flat columns via numpy when
   available, or ``struct``/regex scans otherwise. No per-event
   objects are built, and every integrity check of the streaming
   reader still runs (the block walk *is* the streaming reader's, see
   :meth:`~repro.trace.format.TraceReader.iter_raw_blocks`), so a
   corrupt shard raises the identical typed
   :class:`~repro.trace.format.TraceFormatError`.
2. **Filter** — branch-class dispatch is hoisted out of the inner
   loop: only calls and returns touch a return-address stack, so each
   block is reduced once to its stack-relevant events and conditional
   branches / jumps (the bulk of any trace) never reach Python code.
3. **Replay** — specialised lanes inline the circular-buffer push/pop
   arithmetic of :class:`~repro.bpred.ras.CircularRas` (and the linked
   pool of :class:`~repro.bpred.ras.LinkedRas`) as local-variable
   integer ops, updating counters once per block instead of once per
   event.

Parity is the contract: for every repair mechanism, stack size, and
container version, a batched replay produces **bit-identical**
return/hit/overflow/underflow counters to
:func:`repro.trace.replay.replay_events` — the differential tests in
``tests/test_batch_replay.py`` sweep randomized workloads and the
checked-in sample corpus to hold that line. Throughput is tracked by
``benchmarks/bench_replay_throughput.py`` and gated in CI (see
docs/performance.md).

Set ``REPRO_BATCH_DECODER=python`` to force the stdlib decode path
even when numpy is installed (the parity suite exercises both).
"""

from __future__ import annotations

import io
import os
import re
import struct
from typing import BinaryIO, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.bpred.btb import BranchTargetBuffer
from repro.config.options import RepairMechanism
from repro.errors import ConfigError
from repro.telemetry import span
from repro.telemetry import state as telemetry_state
from repro.telemetry import metrics as telemetry_metrics
from repro.trace.format import (
    DEFAULT_BLOCK_EVENTS,
    TraceFormatError,
    TraceReader,
)
from repro.trace.format import _CLASS_INDEX, _CLASS_LIST  # stable byte encoding
from repro.trace.replay import TraceRasResult, TraceShardSpec

try:  # optional accelerator; the stdlib path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_BATCH_DECODER
    _np = None

from repro.isa.opcodes import ControlClass

_NUM_CLASSES = len(_CLASS_LIST)
_RETURN_IDX = _CLASS_INDEX[ControlClass.RETURN]
_CALL_IDXS = frozenset(
    _CLASS_INDEX[cls] for cls in _CLASS_LIST if cls.is_call)

#: Fixed record widths of the two container versions (see trace.format).
_V1_EVENT_SIZE = struct.calcsize("<BIII")
_V2_EVENT_SIZE = struct.calcsize("<BQQI")

_PCS_V1 = struct.Struct("<II")
_PCS_V2 = struct.Struct("<QQ")

#: Class bytes that touch the RAS (calls push, returns pop).
_STACK_CLASS_BYTES = bytes(sorted(_CALL_IDXS | {_RETURN_IDX}))
_STACK_RE = re.compile(b"[" + re.escape(_STACK_CLASS_BYTES) + b"]")
#: Any class byte outside the encodable range is container corruption.
_BAD_CLASS_RE = re.compile(
    b"[" + re.escape(bytes([_NUM_CLASSES])) + b"-\xff]")

if _np is not None:
    _V1_DTYPE = _np.dtype(
        [("cls", "u1"), ("pc", "<u4"), ("next", "<u4"), ("gap", "<u4")])
    _V2_DTYPE = _np.dtype(
        [("cls", "u1"), ("pc", "<u8"), ("next", "<u8"), ("gap", "<u4")])
    assert _V1_DTYPE.itemsize == _V1_EVENT_SIZE
    assert _V2_DTYPE.itemsize == _V2_EVENT_SIZE


def decoder_backend() -> str:
    """Which block decoder runs: ``"numpy"`` or ``"python"``."""
    if _np is None or os.environ.get("REPRO_BATCH_DECODER") == "python":
        return "python"
    return "numpy"


class EventBatch:
    """One decoded block, reduced to its stack-relevant columns.

    ``classes``/``pcs``/``next_pcs`` are parallel Python lists holding
    only call and return events (everything else is inert to a RAS);
    ``events`` is the block's full event count, kept for throughput
    accounting.
    """

    __slots__ = ("classes", "pcs", "next_pcs", "events")

    def __init__(self, classes: List[int], pcs: List[int],
                 next_pcs: List[int], events: int) -> None:
        self.classes = classes
        self.pcs = pcs
        self.next_pcs = next_pcs
        self.events = events

    def __len__(self) -> int:
        return len(self.classes)


def _bad_class_error(found: int) -> TraceFormatError:
    # Same message the streaming reader raises for the same byte.
    return TraceFormatError(
        f"bad control class: found {found}, expected < {_NUM_CLASSES}")


def _decode_block_numpy(raw: bytes, event_size: int,
                        count: int) -> EventBatch:
    rec = _np.frombuffer(
        raw, dtype=_V1_DTYPE if event_size == _V1_EVENT_SIZE else _V2_DTYPE)
    classes = rec["cls"]
    bad = classes >= _NUM_CLASSES
    if bad.any():
        raise _bad_class_error(int(classes[int(_np.flatnonzero(bad)[0])]))
    mask = classes == _RETURN_IDX
    for index in _CALL_IDXS:
        mask |= classes == index
    keep = _np.flatnonzero(mask)
    return EventBatch(
        classes[keep].tolist(),
        rec["pc"][keep].tolist(),
        rec["next"][keep].tolist(),
        count,
    )


def _decode_block_python(raw: bytes, event_size: int,
                         count: int) -> EventBatch:
    class_bytes = raw[::event_size]
    bad = _BAD_CLASS_RE.search(class_bytes)
    if bad is not None:
        raise _bad_class_error(class_bytes[bad.start()])
    unpack_from = (_PCS_V1 if event_size == _V1_EVENT_SIZE
                   else _PCS_V2).unpack_from
    classes: List[int] = []
    pcs: List[int] = []
    next_pcs: List[int] = []
    for match in _STACK_RE.finditer(class_bytes):
        index = match.start()
        classes.append(class_bytes[index])
        pc, next_pc = unpack_from(raw, index * event_size + 1)
        pcs.append(pc)
        next_pcs.append(next_pc)
    return EventBatch(classes, pcs, next_pcs, count)


def iter_event_batches(
    source: Union[str, os.PathLike, bytes, BinaryIO],
    block_events: int = DEFAULT_BLOCK_EVENTS,
) -> Iterator[EventBatch]:
    """Decode a trace (path, bytes, or stream) block-at-a-time.

    ``block_events`` only shapes v1 pseudo-blocks; v2 traces yield
    their physical compressed blocks.
    """
    decode = (_decode_block_numpy if decoder_backend() == "numpy"
              else _decode_block_python)
    if isinstance(source, (bytes, bytearray)):
        yield from _iter_stream(io.BytesIO(bytes(source)), decode,
                                block_events)
    elif isinstance(source, (str, os.PathLike)):
        with open(os.fspath(source), "rb") as stream:
            yield from _iter_stream(stream, decode, block_events)
    else:
        yield from _iter_stream(source, decode, block_events)


def _iter_stream(stream: BinaryIO, decode, block_events: int
                 ) -> Iterator[EventBatch]:
    reader = TraceReader(stream)
    for event_size, raw, count in reader.iter_raw_blocks(block_events):
        yield decode(raw, event_size, count)


# ----------------------------------------------------------------------
# Replay lanes: inlined RAS semantics, one specialisation per
# organisation. Counters match repro.bpred.ras bit-for-bit; the proofs
# live in tests/test_batch_replay.py.

class _LaneBase:
    __slots__ = ("returns", "hits", "overflows", "underflows")

    def __init__(self) -> None:
        self.returns = 0
        self.hits = 0
        self.overflows = 0
        self.underflows = 0

    def result(self) -> TraceRasResult:
        return TraceRasResult(self.returns, self.hits,
                              self.overflows, self.underflows)


class _CircularLane(_LaneBase):
    """Circular buffer, any repair mechanism without valid bits.

    With no wrong paths in a committed trace, NONE / TOS_POINTER /
    TOS_POINTER_AND_CONTENTS / FULL_STACK replay identically: pops
    always yield the (zero-initialised) slot contents, so the BTB
    fallback can never be consulted and needs no modelling here.
    """

    __slots__ = ("_stack", "_entries", "_tos", "_depth")

    def __init__(self, entries: int) -> None:
        super().__init__()
        self._stack = [0] * entries
        self._entries = entries
        self._tos = 0
        self._depth = 0

    def run(self, batch: EventBatch) -> None:
        stack = self._stack
        entries = self._entries
        tos = self._tos
        depth = self._depth
        returns = hits = overflows = underflows = 0
        return_idx = _RETURN_IDX
        for cls, pc, next_pc in zip(batch.classes, batch.pcs,
                                    batch.next_pcs):
            if cls == return_idx:
                returns += 1
                if stack[tos] == next_pc:
                    hits += 1
                tos = (tos - 1) % entries
                if depth:
                    depth -= 1
                else:
                    underflows += 1
            else:  # batches hold only calls and returns
                tos = (tos + 1) % entries
                stack[tos] = pc + 4
                if depth == entries:
                    overflows += 1
                else:
                    depth += 1
        self._tos = tos
        self._depth = depth
        self.returns += returns
        self.hits += hits
        self.overflows += overflows
        self.underflows += underflows


class _ValidBitsLane(_LaneBase):
    """Circular buffer with Pentium-style valid bits.

    A pop of a never-written slot yields no prediction, so the BTB
    fallback is observable; the lane drives a real
    :class:`BranchTargetBuffer` with exactly the lookup/update sequence
    of the streaming evaluator.
    """

    __slots__ = ("_stack", "_valid", "_entries", "_tos", "_depth", "_btb")

    def __init__(self, entries: int, btb: Optional[BranchTargetBuffer]
                 ) -> None:
        super().__init__()
        self._stack = [0] * entries
        self._valid = [False] * entries
        self._entries = entries
        self._tos = 0
        self._depth = 0
        self._btb = btb

    def run(self, batch: EventBatch) -> None:
        stack = self._stack
        valid = self._valid
        entries = self._entries
        tos = self._tos
        depth = self._depth
        btb = self._btb
        return_idx = _RETURN_IDX
        for cls, pc, next_pc in zip(batch.classes, batch.pcs,
                                    batch.next_pcs):
            if cls == return_idx:
                if valid[tos]:
                    predicted: Optional[int] = stack[tos]
                elif btb is not None:
                    predicted = btb.lookup(pc)
                else:
                    predicted = None
                tos = (tos - 1) % entries
                if depth:
                    depth -= 1
                else:
                    self.underflows += 1
                self.returns += 1
                if predicted == next_pc:
                    self.hits += 1
                if btb is not None:
                    btb.update(pc, next_pc, True)
            else:
                tos = (tos + 1) % entries
                stack[tos] = pc + 4
                valid[tos] = True
                if depth == entries:
                    self.overflows += 1
                else:
                    depth += 1
        self._tos = tos
        self._depth = depth


class _LinkedLane(_LaneBase):
    """Jourdan-style self-checkpointing pool (see LinkedRas)."""

    __slots__ = ("_address", "_next", "_pool", "_tos", "_alloc", "_btb")

    def __init__(self, logical_entries: int, overprovision: int,
                 btb: Optional[BranchTargetBuffer]) -> None:
        super().__init__()
        self._pool = logical_entries * overprovision
        self._address = [0] * self._pool
        self._next = [-1] * self._pool
        self._tos = -1
        self._alloc = 0
        self._btb = btb

    def _is_live(self, slot: int) -> bool:
        index = self._tos
        links = self._next
        for _ in range(self._pool):
            if index == -1:
                return False
            if index == slot:
                return True
            index = links[index]
        return False

    def run(self, batch: EventBatch) -> None:
        address = self._address
        links = self._next
        pool = self._pool
        btb = self._btb
        return_idx = _RETURN_IDX
        for cls, pc, next_pc in zip(batch.classes, batch.pcs,
                                    batch.next_pcs):
            if cls == return_idx:
                tos = self._tos
                if tos == -1:
                    self.underflows += 1
                    predicted = None if btb is None else btb.lookup(pc)
                else:
                    predicted = address[tos]
                    self._tos = links[tos]
                self.returns += 1
                if predicted == next_pc:
                    self.hits += 1
                if btb is not None:
                    btb.update(pc, next_pc, True)
            else:
                slot = self._alloc
                self._alloc = (slot + 1) % pool
                if slot == self._tos or self._is_live(slot):
                    self.overflows += 1
                address[slot] = pc + 4
                links[slot] = self._tos
                self._tos = slot


class _ChampSimLane(_LaneBase):
    """ChampSim ``return_stack`` semantics, inlined (see ChampSimRas).

    The stack is a bounded deque of *call sites* that drops from the
    bottom on overflow; a return predicts top + learned call size, then
    calibrates the tracker against the resolved target. An empty-stack
    return yields no prediction, so the BTB fallback is observable and
    the lane drives a real :class:`BranchTargetBuffer` exactly like the
    streaming evaluator.
    """

    __slots__ = ("_stack", "_trackers", "_mask", "_entries", "_btb")

    def __init__(self, entries: int, btb: Optional[BranchTargetBuffer]
                 ) -> None:
        super().__init__()
        from repro.bpred.ras import ChampSimRas
        self._stack: List[int] = []
        self._trackers = ([ChampSimRas.DEFAULT_CALL_SIZE]
                          * ChampSimRas.NUM_CALL_SIZE_TRACKERS)
        self._mask = ChampSimRas.NUM_CALL_SIZE_TRACKERS - 1
        self._entries = entries
        self._btb = btb

    def run(self, batch: EventBatch) -> None:
        stack = self._stack
        trackers = self._trackers
        mask = self._mask
        entries = self._entries
        btb = self._btb
        return_idx = _RETURN_IDX
        for cls, pc, next_pc in zip(batch.classes, batch.pcs,
                                    batch.next_pcs):
            if cls == return_idx:
                if stack:
                    call_ip = stack.pop()
                    predicted: Optional[int] = (
                        call_ip + trackers[call_ip & mask])
                    size = (call_ip - next_pc if call_ip > next_pc
                            else next_pc - call_ip)
                    if size <= 10:
                        trackers[call_ip & mask] = size
                elif btb is not None:
                    self.underflows += 1
                    predicted = btb.lookup(pc)
                else:
                    self.underflows += 1
                    predicted = None
                self.returns += 1
                if predicted == next_pc:
                    self.hits += 1
                if btb is not None:
                    btb.update(pc, next_pc, True)
            else:
                stack.append(pc)
                if len(stack) > entries:
                    del stack[0]
                    self.overflows += 1


def _make_lane(ras_entries: int, mechanism: RepairMechanism,
               btb_fallback: bool) -> _LaneBase:
    if ras_entries < 1:
        raise ConfigError("RAS needs at least one entry")
    btb = BranchTargetBuffer() if btb_fallback else None
    if mechanism is RepairMechanism.SELF_CHECKPOINT:
        return _LinkedLane(ras_entries, 4, btb)
    if mechanism is RepairMechanism.VALID_BITS:
        return _ValidBitsLane(ras_entries, btb)
    if mechanism is RepairMechanism.CHAMPSIM:
        return _ChampSimLane(ras_entries, btb)
    return _CircularLane(ras_entries)


# ----------------------------------------------------------------------
# Replay entry points, mirroring repro.trace.replay.

def replay_batches(
    batches: Iterable[EventBatch],
    ras_entries: int = 32,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> TraceRasResult:
    """Run pre-decoded batches through one RAS configuration."""
    lane = _make_lane(ras_entries, mechanism, btb_fallback)
    for batch in batches:
        lane.run(batch)
    return lane.result()


def replay_batches_multi(
    batches: Iterable[EventBatch],
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> Dict[int, TraceRasResult]:
    """Every stack size in one decode pass; independent lane state per
    size, so results equal per-size :func:`replay_batches` runs."""
    lanes = [_make_lane(size, mechanism, btb_fallback) for size in sizes]
    for batch in batches:
        for lane in lanes:
            lane.run(batch)
    return {size: lane.result() for size, lane in zip(sizes, lanes)}


def _shard_parts(shard: Union[TraceShardSpec, str, os.PathLike]
                 ) -> "tuple[str, str]":
    if isinstance(shard, TraceShardSpec):
        return shard.path, shard.name
    path = os.fspath(shard)
    return path, path


def _count_metrics(blocks: int, events: int) -> None:
    if telemetry_state.enabled():
        registry = telemetry_metrics()
        registry.counter("batch.blocks").increment(blocks)
        registry.counter("batch.events").increment(events)


def replay_shard_batched(
    shard: Union[TraceShardSpec, str, os.PathLike],
    ras_entries: int = 32,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> TraceRasResult:
    """Batched equivalent of :func:`repro.trace.replay.replay_shard`."""
    path, label = _shard_parts(shard)
    with span("replay/batch", shard=label, entries=ras_entries,
              decoder=decoder_backend()) as trace_span:
        lane = _make_lane(ras_entries, mechanism, btb_fallback)
        blocks = events = 0
        for batch in iter_event_batches(path):
            blocks += 1
            events += batch.events
            lane.run(batch)
        if trace_span is not None:
            trace_span.set(blocks=blocks, events=events)
        _count_metrics(blocks, events)
        return lane.result()


def replay_shard_batched_multi(
    shard: Union[TraceShardSpec, str, os.PathLike],
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> Dict[int, TraceRasResult]:
    """Batched equivalent of
    :func:`repro.trace.replay.replay_shard_multi`: one decode pass
    feeds every stack size."""
    path, label = _shard_parts(shard)
    with span("replay/batch-multi", shard=label, sizes=len(sizes),
              decoder=decoder_backend()) as trace_span:
        lanes = [_make_lane(size, mechanism, btb_fallback)
                 for size in sizes]
        blocks = events = 0
        for batch in iter_event_batches(path):
            blocks += 1
            events += batch.events
            for lane in lanes:
                lane.run(batch)
        if trace_span is not None:
            trace_span.set(blocks=blocks, events=events)
        _count_metrics(blocks, events)
        return {size: lane.result() for size, lane in zip(sizes, lanes)}
