"""Differential-parity harness: fast cycle engines vs their references.

The columnar engines (:mod:`repro.fastsim.cycle` and
:mod:`repro.fastsim.multipath`) promise **bit-identical counters** to
the reference execution-driven CPUs (:mod:`repro.pipeline` and
:mod:`repro.multipath`) — not "close", not "within tolerance":
identical. That promise is what lets the executor serve a fast-engine
result anywhere a reference result is wanted, and this module is the
instrument that holds the line.

The harness runs a (program, config) pair through both engines,
flattens every statistic either one reported into a plain dict — each
:class:`~repro.stats.counters.Counter` as its integer value, each
:class:`~repro.stats.counters.Rate` as its exact ``(hits, events)``
integer pair so no float rounding can mask a drift — and compares the
dicts key for key. A missing key on either side is itself a mismatch:
an engine cannot pass by simply not reporting a counter.

Three layers of API, outermost first:

* :func:`parity_sweep` — sweep benchmark × repair-mechanism × stack
  size (and path count × stack organisation for multipath), returning
  one :class:`ParityReport` per cell. This is what
  ``repro-sim parity`` and the CI matrix run.
* :func:`check_cycle_parity` / :func:`check_multipath_parity` — one
  (program, config) cell.
* :func:`flatten_group` / :func:`compare_flat` — the dict builders, so
  tests can corrupt a flattened side and prove the harness detects it.

Failures are loud by construction: :meth:`ParityReport.ensure` raises
:class:`ParityError` naming every diverging counter with both values.
The tests in ``tests/test_parity_harness.py`` inject corrupted
counters to prove a silent pass is impossible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.defaults import baseline_config
from repro.config.machine import MachineConfig
from repro.config.options import RepairMechanism, StackOrganization
from repro.core.experiment import (
    multipath_machine,
    run_cycle,
    run_multipath,
)
from repro.errors import ReproError
from repro.isa.program import Program
from repro.stats.counters import Counter, Gauge, Histogram, Rate, StatGroup
from repro.workloads.generator import build_workload

#: Flattened statistic value: ``int`` for counters, ``(hits, events)``
#: for rates, ``float`` for gauges, sorted item tuple for histograms.
FlatValue = object


class ParityError(ReproError):
    """Raised when a fast engine's counters diverge from its reference."""


def flatten_group(group: StatGroup) -> Dict[str, FlatValue]:
    """Flatten a :class:`StatGroup` into an exactly-comparable dict.

    Rates flatten to their integer ``(hits, events)`` pair rather than
    the derived float, so two engines cannot "agree" through rounding
    while their raw event streams differ.
    """
    flat: Dict[str, FlatValue] = {}
    for name in group.names():
        stat = group[name]
        if isinstance(stat, Counter):
            flat[name] = stat.value
        elif isinstance(stat, Rate):
            flat[name] = (stat.hits, stat.events)
        elif isinstance(stat, Gauge):
            flat[name] = stat.value
        elif isinstance(stat, Histogram):
            flat[name] = tuple(sorted(stat.buckets.items()))
        else:  # pragma: no cover - no other stat kinds exist today
            flat[name] = repr(stat)
    return flat


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One diverging statistic: its name and the two observed values."""

    name: str
    reference: FlatValue
    fast: FlatValue

    def __str__(self) -> str:
        return f"{self.name}: reference={self.reference!r} fast={self.fast!r}"


@dataclasses.dataclass(frozen=True)
class ParityReport:
    """Outcome of one fast-vs-reference comparison cell."""

    label: str
    reference: Dict[str, FlatValue]
    fast: Dict[str, FlatValue]
    mismatches: Tuple[Mismatch, ...]

    @property
    def matches(self) -> bool:
        return not self.mismatches

    def ensure(self) -> "ParityReport":
        """Return self if clean, raise :class:`ParityError` otherwise."""
        if self.mismatches:
            lines = "\n  ".join(str(m) for m in self.mismatches)
            raise ParityError(
                f"parity violation in {self.label} "
                f"({len(self.mismatches)} diverging counters):\n  {lines}")
        return self


def compare_flat(
    reference: Dict[str, FlatValue],
    fast: Dict[str, FlatValue],
    label: str = "cell",
) -> ParityReport:
    """Compare two flattened stat dicts key-for-key.

    Keys present on only one side are reported as mismatches against
    the sentinel string ``"<absent>"`` — an engine that drops a counter
    fails parity rather than shrinking the comparison surface.
    """
    mismatches: List[Mismatch] = []
    for name in sorted(set(reference) | set(fast)):
        ref_value = reference.get(name, "<absent>")
        fast_value = fast.get(name, "<absent>")
        if ref_value != fast_value:
            mismatches.append(Mismatch(name, ref_value, fast_value))
    return ParityReport(label=label, reference=reference, fast=fast,
                        mismatches=tuple(mismatches))


def _headline(result) -> Dict[str, FlatValue]:
    """The scalar headline numbers every engine reports."""
    return {
        "=instructions": result.instructions,
        "=cycles": result.cycles,
        "=ipc": result.ipc,
    }


def check_cycle_parity(
    program: Program,
    config: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    label: str = "cycle",
    backend: Optional[str] = None,
) -> ParityReport:
    """Run reference ``repro.pipeline`` and the columnar engine; compare.

    ``backend`` forces the columnar engine's array backend ("python" or
    "numpy") independently of ``REPRO_CYCLE_BACKEND``, so a single
    process can cross-check both.
    """
    from repro.fastsim.cycle import run_cycle_fast

    config = config or baseline_config()
    ref_result, _ = run_cycle(program, config,
                              max_instructions=max_instructions)
    fast_result, _ = run_cycle_fast(program, config,
                                    max_instructions=max_instructions,
                                    backend=backend)
    reference = flatten_group(ref_result.group)
    reference.update(_headline(ref_result))
    fast = flatten_group(fast_result.group)
    fast.update(_headline(fast_result))
    return compare_flat(reference, fast, label=label)


def check_multipath_parity(
    program: Program,
    config: MachineConfig,
    max_instructions: Optional[int] = None,
    label: str = "multipath",
) -> ParityReport:
    """Run reference ``repro.multipath`` and its fast twin; compare."""
    from repro.fastsim.multipath import run_multipath_fast

    ref_result, _ = run_multipath(program, config,
                                  max_instructions=max_instructions)
    fast_result, _ = run_multipath_fast(program, config,
                                        max_instructions=max_instructions)
    reference = flatten_group(ref_result.group)
    reference.update(_headline(ref_result))
    fast = flatten_group(fast_result.group)
    fast.update(_headline(fast_result))
    return compare_flat(reference, fast, label=label)


def parity_sweep(
    names: Sequence[str],
    seed: int = 1,
    scale: float = 0.02,
    mechanisms: Optional[Iterable[RepairMechanism]] = None,
    ras_entries: Sequence[int] = (8, 32),
    paths: Sequence[int] = (2,),
    organizations: Optional[Iterable[StackOrganization]] = None,
    backend: Optional[str] = None,
    include_multipath: bool = True,
) -> List[ParityReport]:
    """Sweep the full parity matrix and return one report per cell.

    Single-path cells cover every repair mechanism × stack size for
    each benchmark; multipath cells cover path count × stack
    organisation (per-path stacks subsume the repair axis there — the
    paper's Figure 9 configuration space). Nothing raises: callers
    inspect ``report.matches`` (the CLI prints a table; the tests call
    :meth:`ParityReport.ensure` per cell).
    """
    mechanisms = tuple(mechanisms) if mechanisms else tuple(RepairMechanism)
    organizations = (tuple(organizations) if organizations
                     else tuple(StackOrganization))
    reports: List[ParityReport] = []
    for name in names:
        program = build_workload(name, seed=seed, scale=scale)
        for mechanism in mechanisms:
            for entries in ras_entries:
                config = (baseline_config()
                          .with_repair(mechanism)
                          .with_ras_entries(entries))
                label = (f"cycle/{name}/{mechanism.value}/"
                         f"ras{entries}")
                reports.append(check_cycle_parity(
                    program, config, label=label, backend=backend))
        if not include_multipath:
            continue
        for path_budget in paths:
            for organization in organizations:
                config = multipath_machine(path_budget, organization)
                label = (f"multipath/{name}/p{path_budget}/"
                         f"{organization.value}")
                reports.append(check_multipath_parity(
                    program, config, label=label))
    return reports
