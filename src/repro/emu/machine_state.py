"""Architectural machine state with undo logging and copy-on-write forks.

Values are 64-bit unsigned words; signed comparisons interpret bit 63 as
the sign. Register 0 is hard-wired to zero. Memory is a sparse mapping
from byte address to word, reading as zero when uninitialised.

Two speculation facilities coexist:

* **Undo logs** (single-path pipelines): every write may record the
  previous value into a caller-supplied list; :meth:`rewind` plays such
  a list backwards to restore the pre-write state.
* **Copy-on-write forks** (multipath pipelines): :meth:`fork` creates a
  child whose memory overlays the parent's; reads walk the parent chain
  and writes stay private until :meth:`collapse_into_parent`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import NUM_REGS, REG_ZERO

#: 64-bit word mask.
MASK64 = (1 << 64) - 1
#: Sign bit of the 64-bit word.
SIGN_BIT = 1 << 63

#: One undo record: ("r", index, old) or ("m", addr, old, existed_locally).
UndoEntry = Tuple


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit word as a signed integer."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to an unsigned 64-bit word."""
    return value & MASK64


class MachineState:
    """Registers, memory, PC and halt flag for one execution context."""

    __slots__ = ("regs", "memory", "parent", "pc", "halted")

    def __init__(
        self,
        pc: int = 0,
        initial_memory: Optional[Dict[int, int]] = None,
        parent: Optional["MachineState"] = None,
    ) -> None:
        if parent is None:
            self.regs: List[int] = [0] * NUM_REGS
        else:
            self.regs = list(parent.regs)
            pc = parent.pc
        self.memory: Dict[int, int] = dict(initial_memory or {})
        self.parent = parent
        self.pc = pc
        self.halted = False if parent is None else parent.halted

    # ------------------------------------------------------------------
    # Registers.

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(
        self, index: int, value: int, log: Optional[List[UndoEntry]] = None
    ) -> None:
        if index == REG_ZERO:
            return
        if log is not None:
            log.append(("r", index, self.regs[index]))
        self.regs[index] = value & MASK64

    # ------------------------------------------------------------------
    # Memory.

    def read_mem(self, address: int) -> int:
        address &= MASK64
        state: Optional[MachineState] = self
        while state is not None:
            value = state.memory.get(address)
            if value is not None:
                return value
            state = state.parent
        return 0

    def write_mem(
        self, address: int, value: int, log: Optional[List[UndoEntry]] = None
    ) -> None:
        address &= MASK64
        if log is not None:
            existed = address in self.memory
            old = self.memory[address] if existed else 0
            log.append(("m", address, old, existed))
        self.memory[address] = value & MASK64

    # ------------------------------------------------------------------
    # Speculation support.

    def rewind(self, log: List[UndoEntry]) -> None:
        """Undo every write recorded in ``log``, newest first."""
        for entry in reversed(log):
            if entry[0] == "r":
                _, index, old = entry
                self.regs[index] = old
            else:
                _, address, old, existed = entry
                if existed:
                    self.memory[address] = old
                else:
                    self.memory.pop(address, None)
        log.clear()

    def fork(self) -> "MachineState":
        """Create a copy-on-write child context (multipath forking)."""
        return MachineState(parent=self)

    def collapse_into_parent(self) -> "MachineState":
        """Merge this child's private writes into its parent and return it.

        Used when a forked path is confirmed correct and its sibling has
        been squashed: the surviving child's state becomes architectural.
        """
        if self.parent is None:
            raise ValueError("root state has no parent to collapse into")
        parent = self.parent
        parent.memory.update(self.memory)
        parent.regs = list(self.regs)
        parent.pc = self.pc
        parent.halted = self.halted
        return parent

    def depth(self) -> int:
        """Number of ancestors (0 for the root state)."""
        count = 0
        state = self.parent
        while state is not None:
            count += 1
            state = state.parent
        return count

    def snapshot_regs(self) -> List[int]:
        return list(self.regs)

    def __repr__(self) -> str:
        return (
            f"MachineState(pc={self.pc}, halted={self.halted}, "
            f"depth={self.depth()}, {len(self.memory)} local words)"
        )
