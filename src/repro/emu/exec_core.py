"""Single-instruction execution semantics.

:func:`execute` is the one place in the repository that defines what an
instruction *does*. Every simulator — the reference emulator, the
single-path pipeline and the multipath pipeline — calls it, so functional
behaviour cannot drift between models.
"""

from __future__ import annotations

from typing import List, Optional

from repro.emu.machine_state import MASK64, MachineState, UndoEntry, to_signed
from repro.errors import EmulationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, REG_RA, WORD_SIZE


class ExecOutcome:
    """The architectural effect of one executed instruction.

    Attributes:
        next_pc: address of the next instruction in program order.
        taken: for conditional branches, whether the branch was taken;
            True for unconditional transfers, False otherwise.
        mem_address: effective address of a load/store, else None.
        is_halt: True when the instruction stops the program.
    """

    __slots__ = ("next_pc", "taken", "mem_address", "is_halt")

    def __init__(
        self,
        next_pc: int,
        taken: bool = False,
        mem_address: Optional[int] = None,
        is_halt: bool = False,
    ) -> None:
        self.next_pc = next_pc
        self.taken = taken
        self.mem_address = mem_address
        self.is_halt = is_halt

    def __repr__(self) -> str:
        return (
            f"ExecOutcome(next_pc={self.next_pc}, taken={self.taken}, "
            f"mem={self.mem_address}, halt={self.is_halt})"
        )


def execute(
    inst: Instruction,
    pc: int,
    state: MachineState,
    log: Optional[List[UndoEntry]] = None,
) -> ExecOutcome:
    """Execute ``inst`` (located at ``pc``) against ``state``.

    Register and memory writes optionally record undo entries into
    ``log`` so speculative execution can be rolled back. The caller owns
    ``state.pc``; this function only *returns* the next PC.
    """
    op = inst.opcode
    regs = state.regs
    fallthrough = pc + WORD_SIZE

    # --- ALU register-immediate (most frequent) ----------------------
    if op is Opcode.ADDI:
        state.write_reg(inst.rd, regs[inst.rs] + inst.imm, log)
        return ExecOutcome(fallthrough)
    if op is Opcode.LI:
        state.write_reg(inst.rd, inst.imm, log)
        return ExecOutcome(fallthrough)
    if op is Opcode.ANDI:
        state.write_reg(inst.rd, regs[inst.rs] & (inst.imm & MASK64), log)
        return ExecOutcome(fallthrough)
    if op is Opcode.XORI:
        state.write_reg(inst.rd, regs[inst.rs] ^ (inst.imm & MASK64), log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SLLI:
        state.write_reg(inst.rd, regs[inst.rs] << (inst.imm & 63), log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SRLI:
        state.write_reg(inst.rd, regs[inst.rs] >> (inst.imm & 63), log)
        return ExecOutcome(fallthrough)

    # --- ALU register-register ---------------------------------------
    if op is Opcode.ADD:
        state.write_reg(inst.rd, regs[inst.rs] + regs[inst.rt], log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SUB:
        state.write_reg(inst.rd, regs[inst.rs] - regs[inst.rt], log)
        return ExecOutcome(fallthrough)
    if op is Opcode.AND:
        state.write_reg(inst.rd, regs[inst.rs] & regs[inst.rt], log)
        return ExecOutcome(fallthrough)
    if op is Opcode.OR:
        state.write_reg(inst.rd, regs[inst.rs] | regs[inst.rt], log)
        return ExecOutcome(fallthrough)
    if op is Opcode.XOR:
        state.write_reg(inst.rd, regs[inst.rs] ^ regs[inst.rt], log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SLL:
        state.write_reg(inst.rd, regs[inst.rs] << (regs[inst.rt] & 63), log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SRL:
        state.write_reg(inst.rd, regs[inst.rs] >> (regs[inst.rt] & 63), log)
        return ExecOutcome(fallthrough)
    if op is Opcode.SLT:
        result = 1 if to_signed(regs[inst.rs]) < to_signed(regs[inst.rt]) else 0
        state.write_reg(inst.rd, result, log)
        return ExecOutcome(fallthrough)
    if op is Opcode.MUL:
        state.write_reg(inst.rd, regs[inst.rs] * regs[inst.rt], log)
        return ExecOutcome(fallthrough)

    # --- Memory -------------------------------------------------------
    if op is Opcode.LOAD:
        address = (regs[inst.rs] + inst.imm) & MASK64
        state.write_reg(inst.rd, state.read_mem(address), log)
        return ExecOutcome(fallthrough, mem_address=address)
    if op is Opcode.STORE:
        address = (regs[inst.rs] + inst.imm) & MASK64
        state.write_mem(address, regs[inst.rt], log)
        return ExecOutcome(fallthrough, mem_address=address)

    # --- Control flow --------------------------------------------------
    if op is Opcode.BEQZ:
        taken = regs[inst.rs] == 0
        return ExecOutcome(inst.target if taken else fallthrough, taken=taken)
    if op is Opcode.BNEZ:
        taken = regs[inst.rs] != 0
        return ExecOutcome(inst.target if taken else fallthrough, taken=taken)
    if op is Opcode.BLTZ:
        taken = to_signed(regs[inst.rs]) < 0
        return ExecOutcome(inst.target if taken else fallthrough, taken=taken)
    if op is Opcode.BGEZ:
        taken = to_signed(regs[inst.rs]) >= 0
        return ExecOutcome(inst.target if taken else fallthrough, taken=taken)
    if op is Opcode.J:
        return ExecOutcome(inst.target, taken=True)
    if op is Opcode.JAL:
        state.write_reg(REG_RA, fallthrough, log)
        return ExecOutcome(inst.target, taken=True)
    if op is Opcode.JR:
        return ExecOutcome(regs[inst.rs], taken=True)
    if op is Opcode.JALR:
        target = regs[inst.rs]
        state.write_reg(REG_RA, fallthrough, log)
        return ExecOutcome(target, taken=True)
    if op is Opcode.RET:
        return ExecOutcome(regs[REG_RA], taken=True)

    # --- Misc -----------------------------------------------------------
    if op is Opcode.NOP:
        return ExecOutcome(fallthrough)
    if op is Opcode.HALT:
        return ExecOutcome(fallthrough, is_halt=True)

    raise EmulationError(f"unimplemented opcode {op}")  # pragma: no cover
