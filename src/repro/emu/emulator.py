"""The reference (golden-model) emulator.

Runs a program to completion with no timing model. Used to characterise
workloads (instruction mix, call depth — the paper's Table 2 analogue)
and as the ground truth the pipelines are checked against: a correct
pipeline commits exactly the instruction stream this emulator produces.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import EmulationError
from repro.isa.opcodes import ControlClass
from repro.isa.program import Program
from repro.stats import Histogram


class CommitRecord:
    """One architecturally executed instruction (for stream comparison)."""

    __slots__ = ("pc", "next_pc", "taken")

    def __init__(self, pc: int, next_pc: int, taken: bool) -> None:
        self.pc = pc
        self.next_pc = next_pc
        self.taken = taken

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CommitRecord)
            and self.pc == other.pc
            and self.next_pc == other.next_pc
            and self.taken == other.taken
        )

    def __repr__(self) -> str:
        return f"CommitRecord(pc={self.pc}, next_pc={self.next_pc}, taken={self.taken})"


class EmulationStats:
    """Dynamic-behaviour summary of one emulated run."""

    def __init__(self) -> None:
        self.instructions = 0
        self.cond_branches = 0
        self.taken_cond_branches = 0
        self.calls = 0
        self.returns = 0
        self.indirect_jumps = 0
        self.direct_jumps = 0
        self.loads = 0
        self.stores = 0
        self.halted = False
        self.call_depth = Histogram("call_depth", "call depth at each call")
        self.opcode_counts: Dict[str, int] = {}

    @property
    def control_transfers(self) -> int:
        return (
            self.cond_branches
            + self.calls
            + self.returns
            + self.indirect_jumps
            + self.direct_jumps
        )

    def fraction_of(self, count: int) -> Optional[float]:
        if self.instructions == 0:
            return None
        return count / self.instructions

    def __repr__(self) -> str:
        return (
            f"EmulationStats(n={self.instructions}, calls={self.calls}, "
            f"returns={self.returns}, cond={self.cond_branches})"
        )


class Emulator:
    """Run programs functionally, with an instruction watchdog."""

    def __init__(self, program: Program, max_instructions: int = 50_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.state = MachineState(
            pc=program.entry, initial_memory=program.data
        )

    def trace(self) -> Iterator[CommitRecord]:
        """Yield one :class:`CommitRecord` per executed instruction.

        Terminates when HALT executes; raises :class:`EmulationError` if
        the watchdog limit is exceeded (runaway program) or control
        leaves the text segment.
        """
        state = self.state
        program = self.program
        executed = 0
        while not state.halted:
            if executed >= self.max_instructions:
                raise EmulationError(
                    f"watchdog: {self.max_instructions} instructions without HALT"
                )
            pc = state.pc
            inst = program.fetch(pc)
            outcome = execute(inst, pc, state)
            executed += 1
            if outcome.is_halt:
                state.halted = True
                yield CommitRecord(pc, pc, False)
                return
            state.pc = outcome.next_pc
            yield CommitRecord(pc, outcome.next_pc, outcome.taken)

    def run(self, collect_mix: bool = True) -> EmulationStats:
        """Run to completion and return dynamic statistics."""
        stats = EmulationStats()
        state = self.state
        program = self.program
        depth = 0
        executed = 0
        while not state.halted:
            if executed >= self.max_instructions:
                raise EmulationError(
                    f"watchdog: {self.max_instructions} instructions without HALT"
                )
            pc = state.pc
            inst = program.fetch(pc)
            outcome = execute(inst, pc, state)
            executed += 1
            stats.instructions += 1
            control = inst.control
            if control is ControlClass.COND_BRANCH:
                stats.cond_branches += 1
                if outcome.taken:
                    stats.taken_cond_branches += 1
            elif control.is_call:
                stats.calls += 1
                depth += 1
                stats.call_depth.record(depth)
            elif control is ControlClass.RETURN:
                stats.returns += 1
                depth = max(0, depth - 1)
            elif control is ControlClass.JUMP_INDIRECT:
                stats.indirect_jumps += 1
            elif control is ControlClass.JUMP_DIRECT:
                stats.direct_jumps += 1
            if outcome.mem_address is not None:
                if inst.opcode.value == "load":
                    stats.loads += 1
                else:
                    stats.stores += 1
            if collect_mix:
                name = inst.opcode.value
                stats.opcode_counts[name] = stats.opcode_counts.get(name, 0) + 1
            if outcome.is_halt:
                state.halted = True
                break
            state.pc = outcome.next_pc
        stats.halted = state.halted
        return stats
