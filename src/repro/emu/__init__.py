"""Functional execution: architectural state and a reference emulator.

The same execution core drives three consumers:

* the reference :class:`Emulator` (golden model for tests and workload
  characterisation),
* the single-path pipeline, which executes instructions speculatively at
  dispatch and rewinds an undo log on misprediction recovery, and
* the multipath pipeline, which forks copy-on-write child states.
"""

from repro.emu.machine_state import MachineState, UndoEntry
from repro.emu.exec_core import ExecOutcome, execute
from repro.emu.emulator import Emulator, EmulationStats, CommitRecord

__all__ = [
    "CommitRecord",
    "EmulationStats",
    "Emulator",
    "ExecOutcome",
    "MachineState",
    "UndoEntry",
    "execute",
]
