"""Minimal plain-text bar helpers for terminal output.

Used by the examples and the CLI `report` command. Deliberately plain:
fixed-width ASCII, no colour, no unicode — output must survive logs,
CI transcripts and EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bars, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    peak = max_value if max_value is not None else max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(min(1.0, value / peak) * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {value:g}{unit}")
    return "\n".join(lines)


def grouped_bars(
    group_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """One block per group, one bar per series inside it."""
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(f"series {name!r} length mismatch")
    if not group_labels or not series:
        return "(no data)"
    peak = max_value
    if peak is None:
        peak = max(max(values) for values in series.values())
    series_width = max(len(name) for name in series)
    lines: List[str] = []
    for index, group in enumerate(group_labels):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            filled = int(round(min(1.0, value / max(peak, 1e-12)) * width))
            bar = "#" * filled + "." * (width - filled)
            lines.append(
                f"  {name.ljust(series_width)} |{bar}| {value:g}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], levels: str = " .:-=+*#") -> str:
    """A one-line trend strip (coarse, ASCII-only)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return levels[-1] * len(values)
    steps = len(levels) - 1
    return "".join(
        levels[int(round((value - low) / span * steps))] for value in values
    )
