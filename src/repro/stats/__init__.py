"""Statistics-gathering primitives used by every simulator in the package.

This mirrors the role of SimpleScalar's statistics module: simulators
declare named counters, rates and histograms up front, update them during
simulation, and render them as text tables afterwards.
"""

from repro.stats.counters import Counter, Gauge, Histogram, Rate, StatGroup
from repro.stats.tables import format_table, format_stat_group
from repro.stats.ascii_charts import grouped_bars, hbar_chart, sparkline

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Rate",
    "StatGroup",
    "format_stat_group",
    "format_table",
    "grouped_bars",
    "hbar_chart",
    "sparkline",
]
