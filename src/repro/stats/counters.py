"""Counter, rate and histogram primitives.

These are deliberately tiny, allocation-free objects: simulators update
them on hot paths (every fetched instruction), so they avoid any clever
indirection.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (counts add)."""
        self.value += other.value

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Rate:
    """A hits-over-events ratio, e.g. a predictor hit rate.

    The rate is undefined (reported as ``None``) until at least one event
    has been recorded; callers that format rates render undefined values
    as ``"n/a"`` rather than silently reporting 0.0.
    """

    __slots__ = ("name", "description", "hits", "events")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.hits = 0
        self.events = 0

    def record(self, hit: bool) -> None:
        self.events += 1
        if hit:
            self.hits += 1

    def record_many(self, hits: int, events: int) -> None:
        self.hits += hits
        self.events += events

    def merge(self, other: "Rate") -> None:
        """Fold another rate in (hits and events add, so the merged
        ratio is the properly weighted aggregate, not a mean of means)."""
        self.hits += other.hits
        self.events += other.events

    @property
    def value(self) -> Optional[float]:
        if self.events == 0:
            return None
        return self.hits / self.events

    @property
    def misses(self) -> int:
        return self.events - self.hits

    def reset(self) -> None:
        self.hits = 0
        self.events = 0

    def __repr__(self) -> str:
        value = self.value
        shown = "n/a" if value is None else f"{value:.4f}"
        return f"Rate({self.name}={shown}, {self.hits}/{self.events})"


class Gauge:
    """A point-in-time level (worker count, queue depth, buffer fill).

    Unlike a :class:`Counter` a gauge may move in both directions, so
    merging two gauges cannot add them. The merge keeps the maximum —
    the only aggregate of per-worker levels that is independent of merge
    order, which the telemetry layer relies on for deterministic
    aggregation (see :mod:`repro.telemetry.metrics`).
    """

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (order-independent: keeps the max)."""
        self.value = max(self.value, other.value)

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A sparse integer-keyed histogram (e.g. call-depth distribution)."""

    __slots__ = ("name", "description", "buckets")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.buckets: Dict[int, int] = {}

    def record(self, key: int, amount: int = 1) -> None:
        self.buckets[key] = self.buckets.get(key, 0) + amount

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (per-bucket counts add)."""
        for key, count in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + count

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    @property
    def mean(self) -> Optional[float]:
        total = self.total
        if total == 0:
            return None
        return sum(key * count for key, count in self.buckets.items()) / total

    @property
    def max_key(self) -> Optional[int]:
        if not self.buckets:
            return None
        return max(self.buckets)

    def percentile(self, fraction: float) -> Optional[int]:
        """Return the smallest key at or below which ``fraction`` of mass lies."""
        total = self.total
        if total == 0:
            return None
        threshold = fraction * total
        running = 0
        for key in sorted(self.buckets):
            running += self.buckets[key]
            if running >= threshold:
                return key
        return max(self.buckets)

    def reset(self) -> None:
        self.buckets.clear()

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self.buckets.items()))

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total})"


class StatGroup:
    """A named collection of statistics owned by one simulator component.

    Components create their stats through the group so that a simulator
    can enumerate and print everything it measured without knowing each
    component's internals.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: "Dict[str, object]" = {}

    def counter(self, name: str, description: str = "") -> Counter:
        stat = Counter(name, description)
        self._register(name, stat)
        return stat

    def rate(self, name: str, description: str = "") -> Rate:
        stat = Rate(name, description)
        self._register(name, stat)
        return stat

    def gauge(self, name: str, description: str = "") -> Gauge:
        stat = Gauge(name, description)
        self._register(name, stat)
        return stat

    def histogram(self, name: str, description: str = "") -> Histogram:
        stat = Histogram(name, description)
        self._register(name, stat)
        return stat

    def _register(self, name: str, stat: object) -> None:
        if name in self._stats:
            raise ValueError(f"duplicate stat name {name!r} in group {self.name!r}")
        self._stats[name] = stat

    def __getitem__(self, name: str) -> object:
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def names(self) -> List[str]:
        return list(self._stats)

    def all_stats(self) -> List[object]:
        return list(self._stats.values())

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()  # type: ignore[attr-defined]
