"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and consistent without pulling in
any third-party dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.stats.counters import Counter, Histogram, Rate, StatGroup


def format_value(value: object) -> str:
    """Render one table cell: floats to 4 significant places, None as n/a."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)


def format_stat_group(group: StatGroup) -> str:
    """Render every stat in ``group`` as a two-column table."""
    rows: List[List[object]] = []
    for stat in group.all_stats():
        if isinstance(stat, Counter):
            rows.append([stat.name, stat.value])
        elif isinstance(stat, Rate):
            rows.append([stat.name, stat.value])
        elif isinstance(stat, Histogram):
            rows.append([f"{stat.name}.mean", stat.mean])
            rows.append([f"{stat.name}.max", stat.max_key])
    return format_table(["stat", "value"], rows, title=group.name)
