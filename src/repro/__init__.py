"""repro — return-address-stack repair mechanisms (Skadron et al., MICRO-31 1998).

Public API surface; see README.md for a tour. The headline entry points:

* :func:`repro.config.baseline_config` — the paper's Table 1 machine.
* :func:`repro.workloads.build_workload` — SPECint95-inspired programs.
* :class:`repro.pipeline.SinglePathCPU` — cycle-level out-of-order model.
* :class:`repro.multipath.MultipathCPU` — multipath execution model.
* :func:`repro.core.run_experiment` — one (config, workload) simulation.
"""

from repro.config import (
    MachineConfig,
    RepairMechanism,
    StackOrganization,
    baseline_config,
)

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "RepairMechanism",
    "StackOrganization",
    "baseline_config",
    "__version__",
]
