"""Direction-predictor factory.

The baseline is the paper's McFarling hybrid; the alternatives exist
for the A7 ablation (repair payoff vs direction-predictor quality) and
for users studying other design points.
"""

from __future__ import annotations

from typing import Union

from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.gag import GAgPredictor
from repro.bpred.gshare import GsharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.pag import PAgPredictor
from repro.config.machine import BranchPredictorConfig
from repro.errors import ConfigError

DirectionPredictor = Union[
    BimodalPredictor, GAgPredictor, GsharePredictor, HybridPredictor,
    PAgPredictor,
]

#: Recognised direction-predictor kinds.
DIRECTION_KINDS = ("hybrid", "gshare", "bimodal", "gag", "pag")


def make_direction_predictor(
    config: BranchPredictorConfig,
) -> DirectionPredictor:
    """Build the direction predictor named by ``config.direction_kind``.

    Single-component predictors reuse ``gag_entries`` as their table
    size so capacity comparisons stay honest.
    """
    kind = config.direction_kind
    if kind == "hybrid":
        return HybridPredictor(
            config.gag_entries,
            config.pag_history_entries,
            config.pag_history_bits,
            config.selector_entries,
        )
    if kind == "gshare":
        return GsharePredictor(config.gag_entries)
    if kind == "bimodal":
        return BimodalPredictor(config.gag_entries)
    if kind == "gag":
        return GAgPredictor(config.gag_entries)
    if kind == "pag":
        return PAgPredictor(config.pag_history_entries,
                            config.pag_history_bits)
    raise ConfigError(
        f"unknown direction predictor {kind!r}; choose from {DIRECTION_KINDS}")
