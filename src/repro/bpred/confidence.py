"""JRS branch-confidence estimation (Jacobsen, Rotenberg & Smith).

A table of resetting "miss distance" counters: each correct prediction
increments the branch's counter (saturating); each misprediction resets
it to zero. A low counter value means the branch has mispredicted
recently and is likely to mispredict again — exactly the branches a
multipath processor should fork on.
"""

from __future__ import annotations

from typing import List

from repro.isa.opcodes import WORD_SIZE
from repro.stats import StatGroup


class JrsConfidenceEstimator:
    """Resetting-counter confidence table, indexed by branch PC."""

    def __init__(
        self,
        entries: int = 1024,
        threshold: int = 4,
        maximum: int = 15,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= threshold <= maximum:
            raise ValueError("threshold must lie within [0, maximum]")
        self.entries = entries
        self.threshold = threshold
        self.maximum = maximum
        self._table: List[int] = [0] * entries
        self.stats = StatGroup("confidence")
        self._queries = self.stats.counter("queries")
        self._low = self.stats.counter("low_confidence")

    def _index(self, pc: int) -> int:
        return (pc // WORD_SIZE) & (self.entries - 1)

    def is_low_confidence(self, pc: int) -> bool:
        """Should a multipath processor fork on the branch at ``pc``?"""
        self._queries.increment()
        low = self._table[self._index(pc)] < self.threshold
        if low:
            self._low.increment()
        return low

    def value(self, pc: int) -> int:
        return self._table[self._index(pc)]

    def update(self, pc: int, correct: bool) -> None:
        """Commit-time training: saturating increment / reset to zero."""
        index = self._index(pc)
        if correct:
            if self._table[index] < self.maximum:
                self._table[index] += 1
        else:
            self._table[index] = 0
