"""A Chang/Hao/Patt-style target cache for indirect branches.

Instead of direction history, the history register records recent
*targets*; it is XOR-folded with the branch PC to index a table of last
targets. The paper cites this family of predictors as the
general-purpose alternative for indirect jumps — and notes that for
returns they "do not achieve the near-100% accuracies possible with a
return-address stack". :mod:`repro.analysis.returns` measures exactly
that comparison.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.opcodes import WORD_SIZE
from repro.stats import StatGroup


class TargetCache:
    """Target-history-indexed indirect-branch target predictor."""

    def __init__(
        self,
        entries: int = 1024,
        history_targets: int = 4,
        bits_per_target: int = 4,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if history_targets < 0:
            raise ValueError("history_targets must be >= 0")
        if not 1 <= bits_per_target <= 16:
            raise ValueError("bits_per_target must be in [1, 16]")
        self.entries = entries
        self.history_targets = history_targets
        self.bits_per_target = bits_per_target
        self._history_mask = (1 << (history_targets * bits_per_target)) - 1
        self._history = 0
        self._table: List[Optional[int]] = [None] * entries
        self.stats = StatGroup("target_cache")
        self._lookups = self.stats.counter("lookups")
        self._hits = self.stats.counter("hits")

    def _index(self, pc: int) -> int:
        return ((pc // WORD_SIZE) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the indirect branch at ``pc``."""
        self._lookups.increment()
        predicted = self._table[self._index(pc)]
        if predicted is not None:
            self._hits.increment()
        return predicted

    def update(self, pc: int, target: int) -> None:
        """Commit-time training: install the target, then shift it into
        the global target history."""
        self._table[self._index(pc)] = target
        if self.history_targets:
            folded = (target // WORD_SIZE) & ((1 << self.bits_per_target) - 1)
            self._history = (
                ((self._history << self.bits_per_target) ^ folded)
                & self._history_mask
            )

    @property
    def history(self) -> int:
        return self._history
