"""The front-end predictor facade.

One object bundles everything the fetch engine consults — the hybrid
direction predictor, the BTB and the return-address stack — and owns
the checkpoint discipline:

* RAS pushes/pops happen *speculatively at prediction time* (that is
  the whole problem the paper studies);
* every instruction that can trigger a recovery (conditional branch,
  indirect jump/call, return) captures a repair checkpoint *after* its
  own RAS action, subject to shadow-slot availability;
* direction tables and the BTB train at *commit* time, as in
  SimpleScalar.

The pipelines drive it with three calls per control instruction:
:meth:`predict` at fetch, :meth:`repair` at misprediction recovery and
:meth:`train_commit` at commit (plus :meth:`release` when the
instruction leaves flight).
"""

from __future__ import annotations

from typing import Optional

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.direction import make_direction_predictor
from repro.bpred.ras import BaseRas, make_ras
from repro.bpred.repair import ShadowCheckpointPool
from repro.config.machine import BranchPredictorConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.stats import StatGroup

#: Control classes whose prediction can be wrong (and so checkpoint).
_CHECKPOINTED = frozenset({
    ControlClass.COND_BRANCH,
    ControlClass.JUMP_INDIRECT,
    ControlClass.CALL_INDIRECT,
    ControlClass.RETURN,
})

#: Hot-path class groupings, hoisted so ``predict`` avoids building
#: tuples (and walking the ``is_call`` property chain) per prediction.
_DIRECT = frozenset({ControlClass.JUMP_DIRECT, ControlClass.CALL_DIRECT})
_INDIRECT = frozenset({ControlClass.JUMP_INDIRECT, ControlClass.CALL_INDIRECT})
_CALLS = frozenset({ControlClass.CALL_DIRECT, ControlClass.CALL_INDIRECT})


class Prediction:
    """Everything the pipeline must remember about one prediction."""

    __slots__ = (
        "pc", "control", "taken", "target", "checkpoint", "has_slot",
        "used_ras", "from_btb", "ras",
    )

    def __init__(
        self,
        pc: int,
        control: ControlClass,
        taken: bool,
        target: int,
        checkpoint: object = None,
        has_slot: bool = False,
        used_ras: bool = False,
        from_btb: bool = False,
        ras: Optional[BaseRas] = None,
    ) -> None:
        self.pc = pc
        self.control = control
        self.taken = taken
        self.target = target
        self.checkpoint = checkpoint
        self.has_slot = has_slot
        self.used_ras = used_ras
        self.from_btb = from_btb
        self.ras = ras

    def __repr__(self) -> str:
        return (
            f"Prediction(pc={self.pc}, {self.control.value}, "
            f"taken={self.taken}, target={self.target})"
        )


class FrontEndPredictor:
    """Hybrid + BTB + RAS with checkpoint/repair plumbing."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        #: The direction predictor ("hybrid" = the paper's baseline;
        #: kept under the historical attribute name as well).
        self.direction = make_direction_predictor(config)
        self.hybrid = self.direction
        self.btb = BranchTargetBuffer(config.btb_sets, config.btb_assoc)
        self.ras: Optional[BaseRas] = (
            make_ras(
                config.ras_entries,
                config.ras_repair,
                config.self_checkpoint_overprovision,
                config.repair_contents_depth,
            )
            if config.ras_enabled else None
        )
        self.shadow_pool = ShadowCheckpointPool(config.shadow_checkpoint_slots)
        self.stats = StatGroup("frontend")
        self._return_accuracy = self.stats.rate(
            "return_accuracy", "committed returns predicted correctly")
        self._returns_from_btb = self.stats.counter(
            "returns_from_btb", "returns predicted by BTB fallback")
        self._returns_unpredicted = self.stats.counter(
            "returns_unpredicted", "returns with no prediction at all")
        self._indirect_accuracy = self.stats.rate(
            "indirect_accuracy", "committed indirect jumps/calls correct")
        self._cond_accuracy = self.stats.rate(
            "cond_accuracy", "committed conditional branches correct")

    # ------------------------------------------------------------------
    # Fetch time.

    def predict(
        self,
        pc: int,
        inst: Instruction,
        ras: Optional[BaseRas] = None,
    ) -> Prediction:
        """Predict the control instruction at ``pc`` and update the RAS.

        ``ras`` overrides the default stack — multipath per-path stacks
        pass their own. The returned Prediction holds the checkpoint to
        restore on recovery.
        """
        if ras is None:
            ras = self.ras
        control = inst.control
        fallthrough = pc + WORD_SIZE
        taken = True
        target = fallthrough
        used_ras = False
        from_btb = False

        if control is ControlClass.COND_BRANCH:
            taken = self.direction.predict(pc)
            if taken:
                predicted = self.btb.lookup(pc)
                if predicted is None:
                    # Decoupled BTB miss: the fetch engine cannot
                    # redirect, so the branch effectively predicts
                    # not-taken.
                    taken = False
                else:
                    target = predicted
        elif control in _DIRECT:
            target = inst.target if inst.target is not None else fallthrough
        elif control in _INDIRECT:
            predicted = self.btb.lookup(pc)
            from_btb = True
            target = predicted if predicted is not None else fallthrough
        elif control is ControlClass.RETURN:
            if ras is not None:
                popped = ras.pop()
                used_ras = True
                if popped is None:
                    # Valid-bits detection (or an empty linked stack):
                    # the stack knows it has nothing credible, fall back
                    # to the BTB.
                    popped = self.btb.lookup(pc)
                    from_btb = True
                target = popped if popped is not None else fallthrough
            else:
                predicted = self.btb.lookup(pc)
                from_btb = True
                target = predicted if predicted is not None else fallthrough

        if control in _CALLS and ras is not None:
            ras.push(fallthrough)

        checkpoint = None
        has_slot = False
        if ras is not None and control in _CHECKPOINTED:
            has_slot = self.shadow_pool.try_acquire()
            if has_slot:
                checkpoint = ras.checkpoint()
        return Prediction(
            pc, control, taken, target,
            checkpoint=checkpoint, has_slot=has_slot,
            used_ras=used_ras, from_btb=from_btb, ras=ras,
        )

    # ------------------------------------------------------------------
    # Recovery and retirement.

    def repair(self, prediction: Prediction) -> None:
        """Restore the RAS from this prediction's checkpoint (recovery)."""
        if prediction.ras is not None and prediction.has_slot:
            prediction.ras.restore(prediction.checkpoint)

    def release(self, prediction: Prediction) -> None:
        """Free the shadow slot when the instruction leaves flight."""
        if prediction.has_slot:
            self.shadow_pool.release()
            prediction.has_slot = False

    def train_commit(
        self,
        pc: int,
        inst: Instruction,
        taken: bool,
        target: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """Commit-time training of the direction tables and BTB.

        ``prediction`` (when the committing instruction still has one)
        feeds the accuracy statistics the paper reports.
        """
        control = inst.control
        if control is ControlClass.COND_BRANCH:
            self.direction.update(pc, taken)
            if prediction is not None:
                correct = (prediction.taken == taken
                           and (not taken or prediction.target == target))
                self._cond_accuracy.record(correct)
                record_outcome = getattr(self.direction, "record_outcome", None)
                if record_outcome is not None:
                    record_outcome(correct)
            self.btb.update(pc, target, taken)
        elif control in _INDIRECT:
            self.btb.update(pc, target, True)
            if prediction is not None:
                self._indirect_accuracy.record(prediction.target == target)
        elif control is ControlClass.RETURN:
            # Returns always train the BTB so the fallback path (no RAS,
            # or an invalidated entry) has something to predict from.
            self.btb.update(pc, target, True)
            if prediction is not None:
                self._return_accuracy.record(prediction.target == target)
                if prediction.from_btb:
                    self._returns_from_btb.increment()

    @property
    def return_accuracy(self) -> Optional[float]:
        return self._return_accuracy.value

    @property
    def cond_accuracy(self) -> Optional[float]:
        return self._cond_accuracy.value

    @property
    def indirect_accuracy(self) -> Optional[float]:
        return self._indirect_accuracy.value
