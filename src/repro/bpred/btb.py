"""The branch target buffer.

Decoupled from the direction predictor as in Calder & Grunwald: entries
are allocated only for *taken* control transfers, so the (smaller) BTB
is not wasted on never-taken branches. Set-associative with true-LRU
replacement inside each set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.opcodes import WORD_SIZE
from repro.stats import StatGroup


class BranchTargetBuffer:
    """A sets x assoc BTB mapping branch PC -> last-seen target."""

    def __init__(self, sets: int = 512, assoc: int = 4) -> None:
        if sets < 1 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        if assoc < 1:
            raise ValueError("assoc must be >= 1")
        self.sets = sets
        self.assoc = assoc
        # Each set: list of (tag, target), most-recently-used last.
        self._ways: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]
        self.stats = StatGroup("btb")
        self._lookups = self.stats.counter("lookups")
        self._hits = self.stats.counter("hits")

    def _set_index(self, pc: int) -> int:
        return (pc // WORD_SIZE) & (self.sets - 1)

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for ``pc``, or None on a miss.

        A hit refreshes the entry's LRU position (a lookup models a
        fetch-stage probe of the BTB).
        """
        self._lookups.increment()
        ways = self._ways[self._set_index(pc)]
        if ways:
            tag, target = ways[-1]
            if tag == pc:
                # MRU hit: loops and repeated returns re-probe the same
                # entry; skip the scan-and-rotate (a no-op for the MRU).
                self._hits.increment()
                return target
        for position, (tag, target) in enumerate(ways):
            if tag == pc:
                if position != len(ways) - 1:
                    ways.append(ways.pop(position))
                self._hits.increment()
                return target
        return None

    def update(self, pc: int, target: int, taken: bool) -> None:
        """Commit-time training: install/refresh ``pc -> target``.

        Not-taken branches never allocate (decoupled organisation), but
        a not-taken outcome for an existing entry leaves it in place —
        the entry still records the taken-path target.
        """
        ways = self._ways[self._set_index(pc)]
        for position, (tag, _) in enumerate(ways):
            if tag == pc:
                if taken:
                    ways.pop(position)
                    ways.append((pc, target))
                return
        if not taken:
            return
        if len(ways) >= self.assoc:
            ways.pop(0)  # evict true-LRU
        ways.append((pc, target))

    @property
    def hit_rate(self) -> Optional[float]:
        if self._lookups.value == 0:
            return None
        return self._hits.value / self._lookups.value

    def occupancy(self) -> int:
        """Number of valid entries (for tests and diagnostics)."""
        return sum(len(ways) for ways in self._ways)
