"""The classic bimodal predictor (J. Smith, 1981).

One PC-indexed table of 2-bit saturating counters — no history at all.
Included as the weak end of the direction-predictor spectrum for the
corruption-pressure ablation (A7): worse direction prediction means
more wrong paths, more RAS corruption, and a larger payoff from repair.
"""

from __future__ import annotations

from repro.bpred.twobit import CounterTable
from repro.isa.opcodes import WORD_SIZE


class BimodalPredictor:
    """PC-indexed 2-bit counters."""

    __slots__ = ("_table",)

    def __init__(self, entries: int = 4096) -> None:
        self._table = CounterTable(entries, bits=2)

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc // WORD_SIZE)

    def update(self, pc: int, outcome: bool) -> None:
        self._table.update(pc // WORD_SIZE, outcome)
