"""PAg: a per-address-history two-level adaptive predictor (Yeh & Patt).

Each branch (hashed by PC) owns a private history register in a first-
level table; all histories index one shared second-level pattern table
of 2-bit counters. The paper's baseline uses 1K histories of 10 bits.
"""

from __future__ import annotations

from typing import List

from repro.bpred.twobit import CounterTable
from repro.isa.opcodes import WORD_SIZE


class PAgPredictor:
    """Per-branch-history predictor with commit-time update."""

    __slots__ = ("history_entries", "history_bits", "_histories", "_pattern")

    def __init__(self, history_entries: int = 1024, history_bits: int = 10) -> None:
        if history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a power of two")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self._histories: List[int] = [0] * history_entries
        self._pattern = CounterTable(1 << history_bits, bits=2)

    def _history_index(self, pc: int) -> int:
        # Drop the word-offset bits so consecutive instructions spread
        # over distinct rows.
        return (pc // WORD_SIZE) & (self.history_entries - 1)

    def predict(self, pc: int) -> bool:
        history = self._histories[self._history_index(pc)]
        return self._pattern.predict(history)

    def update(self, pc: int, outcome: bool) -> None:
        index = self._history_index(pc)
        history = self._histories[index]
        self._pattern.update(history, outcome)
        self._histories[index] = ((history << 1) | int(outcome)) & (
            (1 << self.history_bits) - 1
        )

    def history_of(self, pc: int) -> int:
        return self._histories[self._history_index(pc)]
