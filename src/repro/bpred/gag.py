"""GAg: a global-history two-level adaptive predictor (Yeh & Patt).

A single global branch-history register indexes one shared pattern table
of 2-bit counters. The paper's baseline uses a 4K-entry GAg (12 bits of
global history) as one component of the McFarling hybrid.
"""

from __future__ import annotations

from repro.bpred.twobit import CounterTable


class GAgPredictor:
    """Global-history predictor with commit-time update.

    The history register is architectural (updated at commit, as the
    paper notes SimpleScalar does), so wrong-path branches never pollute
    it.
    """

    __slots__ = ("history_bits", "history", "_table")

    def __init__(self, entries: int = 4096) -> None:
        self._table = CounterTable(entries, bits=2)
        self.history_bits = entries.bit_length() - 1
        self.history = 0

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc`` (pc unused: GAg)."""
        return self._table.predict(self.history)

    def update(self, pc: int, outcome: bool) -> None:
        """Train the indexed counter, then shift the outcome into history."""
        self._table.update(self.history, outcome)
        self.history = ((self.history << 1) | int(outcome)) & (
            (1 << self.history_bits) - 1
        )

    def counter_value(self, history: int) -> int:
        return self._table.value(history)
