"""The return-address stack and its repair mechanisms.

This module is the paper's primary contribution surface. Two physical
organisations are provided:

* :class:`CircularRas` — the conventional circular buffer (Alpha
  21164/21264 style). Pushes advance the top-of-stack (TOS) pointer and
  overwrite; pops retreat it. Overflow and underflow silently wrap. The
  repair mechanism decides what :meth:`~CircularRas.checkpoint` saves at
  each predicted branch and what :meth:`~CircularRas.restore` puts back
  on misprediction recovery:

  ========================  =============================================
  NONE                      nothing — wrong-path pushes/pops persist
  TOS_POINTER               the TOS pointer (Cyrix-patent style)
  TOS_POINTER_AND_CONTENTS  pointer + the top entry's contents (the
                            paper's proposal: also repairs the common
                            wrong-path pop-then-push overwrite)
  FULL_STACK                the whole stack (upper bound)
  VALID_BITS                pointer, plus Pentium-style valid bits:
                            entries written by squashed wrong-path
                            pushes are detectable and a pop of an
                            invalid entry yields *no* prediction
  ========================  =============================================

* :class:`LinkedRas` — Jourdan-style self-checkpointing: every push
  allocates a fresh physical entry from a circular pool and links it to
  the previous top, so pops never destroy contents and a pointer-only
  checkpoint restores the full logical stack — until the pool recycles
  a still-referenced entry, which is why this scheme needs more physical
  entries than logical depth (the paper's observation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config.options import RepairMechanism
from repro.errors import ConfigError
from repro.stats import StatGroup

#: Opaque checkpoint token; layout is private to each implementation.
Checkpoint = Tuple


class BaseRas:
    """Interface shared by both stack organisations."""

    def __init__(self, name: str) -> None:
        self.stats = StatGroup(name)
        self._pushes = self.stats.counter("pushes")
        self._pops = self.stats.counter("pops")
        self._overflows = self.stats.counter("overflows")
        self._underflows = self.stats.counter("underflows")
        self._restores = self.stats.counter("restores")

    # -- interface -----------------------------------------------------
    def push(self, address: int) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[int]:
        raise NotImplementedError

    def top(self) -> Optional[int]:
        raise NotImplementedError

    def checkpoint(self) -> Optional[Checkpoint]:
        raise NotImplementedError

    def restore(self, token: Optional[Checkpoint]) -> None:
        raise NotImplementedError

    def clone(self):
        """Deep-copy this stack (per-path copies under multipath)."""
        raise NotImplementedError

    def logical_entries(self) -> List[int]:
        """Top-first logical contents (tests and diagnostics only)."""
        raise NotImplementedError


class CircularRas(BaseRas):
    """Circular-buffer RAS with a configurable repair mechanism."""

    def __init__(
        self,
        entries: int,
        repair: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
        contents_depth: int = 1,
    ) -> None:
        """``contents_depth`` generalises TOS_POINTER_AND_CONTENTS to
        checkpoint the top *k* entries — the paper notes "one can, of
        course, save an arbitrary number of return-address-stack entries
        this way; the extreme would be to checkpoint the entire stack".
        ``contents_depth=1`` is the paper's proposal; ``entries`` is the
        full-checkpoint extreme.
        """
        if repair is RepairMechanism.SELF_CHECKPOINT:
            raise ConfigError("SELF_CHECKPOINT requires LinkedRas; use make_ras()")
        if entries < 1:
            raise ConfigError("RAS needs at least one entry")
        if not 1 <= contents_depth <= entries:
            raise ConfigError("contents_depth must be in [1, entries]")
        super().__init__(f"ras[{repair}]")
        self.entries = entries
        self.repair = repair
        self.contents_depth = contents_depth
        self._stack: List[int] = [0] * entries
        self._tos = 0
        #: Occupancy in [0, entries]; stats-only, not hardware state.
        self._depth = 0
        # Valid-bit machinery (only consulted under VALID_BITS).
        self._valid: List[bool] = [False] * entries
        self._writer: List[int] = [0] * entries
        self._push_counter = 0

    # -- stack operations ----------------------------------------------
    def push(self, address: int) -> None:
        self._pushes.increment()
        self._push_counter += 1
        tos = (self._tos + 1) % self.entries
        self._tos = tos
        self._stack[tos] = address
        self._valid[tos] = True
        self._writer[tos] = self._push_counter
        if self._depth == self.entries:
            self._overflows.increment()
        else:
            self._depth += 1

    def pop(self) -> Optional[int]:
        self._pops.increment()
        tos = self._tos
        value: Optional[int] = self._stack[tos]
        if self.repair is RepairMechanism.VALID_BITS and not self._valid[tos]:
            value = None
        self._tos = (tos - 1) % self.entries
        if self._depth == 0:
            self._underflows.increment()
        else:
            self._depth -= 1
        return value

    def top(self) -> Optional[int]:
        if self.repair is RepairMechanism.VALID_BITS and not self._valid[self._tos]:
            return None
        return self._stack[self._tos]

    # -- repair ----------------------------------------------------------
    def checkpoint(self) -> Optional[Checkpoint]:
        repair = self.repair
        if repair is RepairMechanism.NONE:
            return None
        if repair is RepairMechanism.TOS_POINTER:
            return (self._tos, self._depth)
        if repair is RepairMechanism.TOS_POINTER_AND_CONTENTS:
            if self.contents_depth == 1:
                return (self._tos, self._depth, self._stack[self._tos])
            saved = tuple(
                self._stack[(self._tos - offset) % self.entries]
                for offset in range(self.contents_depth)
            )
            return (self._tos, self._depth, saved)
        if repair is RepairMechanism.FULL_STACK:
            return (self._tos, self._depth, tuple(self._stack), tuple(self._valid))
        # VALID_BITS: pointer plus the push horizon for invalidation.
        return (self._tos, self._depth, self._push_counter)

    def restore(self, token: Optional[Checkpoint]) -> None:
        if token is None:
            return
        self._restores.increment()
        repair = self.repair
        self._tos = token[0]
        self._depth = token[1]
        if repair is RepairMechanism.TOS_POINTER_AND_CONTENTS:
            if self.contents_depth == 1:
                self._stack[self._tos] = token[2]
                self._valid[self._tos] = True
            else:
                for offset, value in enumerate(token[2]):
                    index = (self._tos - offset) % self.entries
                    self._stack[index] = value
                    self._valid[index] = True
        elif repair is RepairMechanism.FULL_STACK:
            self._stack = list(token[2])
            self._valid = list(token[3])
        elif repair is RepairMechanism.VALID_BITS:
            horizon = token[2]
            for index in range(self.entries):
                if self._writer[index] > horizon:
                    self._valid[index] = False

    # -- misc --------------------------------------------------------------
    def clone(self) -> "CircularRas":
        twin = CircularRas(self.entries, self.repair, self.contents_depth)
        twin._stack = list(self._stack)
        twin._tos = self._tos
        twin._depth = self._depth
        twin._valid = list(self._valid)
        twin._writer = list(self._writer)
        twin._push_counter = self._push_counter
        return twin

    def logical_entries(self) -> List[int]:
        result = []
        index = self._tos
        for _ in range(self._depth):
            result.append(self._stack[index])
            index = (index - 1) % self.entries
        return result

    @property
    def depth(self) -> int:
        return self._depth


class LinkedRas(BaseRas):
    """Jourdan-style self-checkpointing RAS (linked entries in a pool)."""

    def __init__(self, logical_entries: int, overprovision: int = 4) -> None:
        if logical_entries < 1 or overprovision < 1:
            raise ConfigError("LinkedRas needs positive sizes")
        super().__init__("ras[self-checkpoint]")
        self.logical_size = logical_entries
        self.pool_size = logical_entries * overprovision
        self._address: List[int] = [0] * self.pool_size
        self._next: List[int] = [-1] * self.pool_size
        self._tos = -1  # -1 = empty stack
        self._alloc = 0

    def push(self, address: int) -> None:
        self._pushes.increment()
        slot = self._alloc
        self._alloc = (self._alloc + 1) % self.pool_size
        if slot == self._tos or self._is_live(slot):
            self._overflows.increment()
        self._address[slot] = address
        self._next[slot] = self._tos
        self._tos = slot

    def _is_live(self, slot: int) -> bool:
        """Is ``slot`` reachable from the current TOS? (stats only)

        Bounded walk: the chain cannot meaningfully exceed the pool.
        """
        index = self._tos
        for _ in range(self.pool_size):
            if index == -1:
                return False
            if index == slot:
                return True
            index = self._next[index]
        return False

    def pop(self) -> Optional[int]:
        self._pops.increment()
        if self._tos == -1:
            self._underflows.increment()
            return None
        value = self._address[self._tos]
        self._tos = self._next[self._tos]
        return value

    def top(self) -> Optional[int]:
        if self._tos == -1:
            return None
        return self._address[self._tos]

    def checkpoint(self) -> Optional[Checkpoint]:
        # Self-checkpointing: the pointer alone preserves contents,
        # because pops never destroy entries and pushes never overwrite
        # (until pool recycling — the cost the paper points out).
        return (self._tos,)

    def restore(self, token: Optional[Checkpoint]) -> None:
        if token is None:
            return
        self._restores.increment()
        self._tos = token[0]

    def clone(self) -> "LinkedRas":
        twin = LinkedRas(self.logical_size, self.pool_size // self.logical_size)
        twin._address = list(self._address)
        twin._next = list(self._next)
        twin._tos = self._tos
        twin._alloc = self._alloc
        return twin

    def logical_entries(self) -> List[int]:
        result = []
        index = self._tos
        for _ in range(self.pool_size):
            if index == -1:
                break
            result.append(self._address[index])
            index = self._next[index]
        return result


def make_ras(entries: int, repair: RepairMechanism,
             self_checkpoint_overprovision: int = 4,
             contents_depth: int = 1) -> BaseRas:
    """Build the stack organisation implied by ``repair``."""
    if repair is RepairMechanism.SELF_CHECKPOINT:
        return LinkedRas(entries, self_checkpoint_overprovision)
    return CircularRas(entries, repair, contents_depth)
