"""The return-address stack and its repair mechanisms.

This module is the paper's primary contribution surface. Two physical
organisations are provided:

* :class:`CircularRas` — the conventional circular buffer (Alpha
  21164/21264 style). Pushes advance the top-of-stack (TOS) pointer and
  overwrite; pops retreat it. Overflow and underflow silently wrap. The
  repair mechanism decides what :meth:`~CircularRas.checkpoint` saves at
  each predicted branch and what :meth:`~CircularRas.restore` puts back
  on misprediction recovery:

  ========================  =============================================
  NONE                      nothing — wrong-path pushes/pops persist
  TOS_POINTER               the TOS pointer (Cyrix-patent style)
  TOS_POINTER_AND_CONTENTS  pointer + the top entry's contents (the
                            paper's proposal: also repairs the common
                            wrong-path pop-then-push overwrite)
  FULL_STACK                the whole stack (upper bound)
  VALID_BITS                pointer, plus Pentium-style valid bits:
                            entries written by squashed wrong-path
                            pushes are detectable and a pop of an
                            invalid entry yields *no* prediction
  ========================  =============================================

* :class:`LinkedRas` — Jourdan-style self-checkpointing: every push
  allocates a fresh physical entry from a circular pool and links it to
  the previous top, so pops never destroy contents and a pointer-only
  checkpoint restores the full logical stack — until the pool recycles
  a still-referenced entry, which is why this scheme needs more physical
  entries than logical depth (the paper's observation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config.options import RepairMechanism
from repro.errors import ConfigError
from repro.isa.opcodes import WORD_SIZE
from repro.stats import StatGroup

#: Opaque checkpoint token; layout is private to each implementation.
Checkpoint = Tuple


class BaseRas:
    """Interface shared by both stack organisations."""

    def __init__(self, name: str) -> None:
        self.stats = StatGroup(name)
        self._pushes = self.stats.counter("pushes")
        self._pops = self.stats.counter("pops")
        self._overflows = self.stats.counter("overflows")
        self._underflows = self.stats.counter("underflows")
        self._restores = self.stats.counter("restores")

    # -- interface -----------------------------------------------------
    def push(self, address: int) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[int]:
        raise NotImplementedError

    def top(self) -> Optional[int]:
        raise NotImplementedError

    def checkpoint(self) -> Optional[Checkpoint]:
        raise NotImplementedError

    def restore(self, token: Optional[Checkpoint]) -> None:
        raise NotImplementedError

    def clone(self):
        """Deep-copy this stack (per-path copies under multipath)."""
        raise NotImplementedError

    def logical_entries(self) -> List[int]:
        """Top-first logical contents (tests and diagnostics only)."""
        raise NotImplementedError


class CircularRas(BaseRas):
    """Circular-buffer RAS with a configurable repair mechanism."""

    def __init__(
        self,
        entries: int,
        repair: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
        contents_depth: int = 1,
    ) -> None:
        """``contents_depth`` generalises TOS_POINTER_AND_CONTENTS to
        checkpoint the top *k* entries — the paper notes "one can, of
        course, save an arbitrary number of return-address-stack entries
        this way; the extreme would be to checkpoint the entire stack".
        ``contents_depth=1`` is the paper's proposal; ``entries`` is the
        full-checkpoint extreme.
        """
        if repair is RepairMechanism.SELF_CHECKPOINT:
            raise ConfigError("SELF_CHECKPOINT requires LinkedRas; use make_ras()")
        if repair is RepairMechanism.CHAMPSIM:
            raise ConfigError("CHAMPSIM requires ChampSimRas; use make_ras()")
        if entries < 1:
            raise ConfigError("RAS needs at least one entry")
        if not 1 <= contents_depth <= entries:
            raise ConfigError("contents_depth must be in [1, entries]")
        super().__init__(f"ras[{repair}]")
        self.entries = entries
        self.repair = repair
        self.contents_depth = contents_depth
        self._stack: List[int] = [0] * entries
        self._tos = 0
        #: Occupancy in [0, entries]; stats-only, not hardware state.
        self._depth = 0
        # Valid-bit machinery (only consulted under VALID_BITS).
        self._valid: List[bool] = [False] * entries
        self._writer: List[int] = [0] * entries
        self._push_counter = 0

    # -- stack operations ----------------------------------------------
    def push(self, address: int) -> None:
        self._pushes.increment()
        self._push_counter += 1
        tos = (self._tos + 1) % self.entries
        self._tos = tos
        self._stack[tos] = address
        self._valid[tos] = True
        self._writer[tos] = self._push_counter
        if self._depth == self.entries:
            self._overflows.increment()
        else:
            self._depth += 1

    def pop(self) -> Optional[int]:
        self._pops.increment()
        tos = self._tos
        value: Optional[int] = self._stack[tos]
        if self.repair is RepairMechanism.VALID_BITS and not self._valid[tos]:
            value = None
        self._tos = (tos - 1) % self.entries
        if self._depth == 0:
            self._underflows.increment()
        else:
            self._depth -= 1
        return value

    def top(self) -> Optional[int]:
        if self.repair is RepairMechanism.VALID_BITS and not self._valid[self._tos]:
            return None
        return self._stack[self._tos]

    # -- repair ----------------------------------------------------------
    def checkpoint(self) -> Optional[Checkpoint]:
        repair = self.repair
        if repair is RepairMechanism.NONE:
            return None
        if repair is RepairMechanism.TOS_POINTER:
            return (self._tos, self._depth)
        if repair is RepairMechanism.TOS_POINTER_AND_CONTENTS:
            if self.contents_depth == 1:
                return (self._tos, self._depth, self._stack[self._tos])
            saved = tuple(
                self._stack[(self._tos - offset) % self.entries]
                for offset in range(self.contents_depth)
            )
            return (self._tos, self._depth, saved)
        if repair is RepairMechanism.FULL_STACK:
            return (self._tos, self._depth, tuple(self._stack), tuple(self._valid))
        # VALID_BITS: pointer plus the push horizon for invalidation.
        return (self._tos, self._depth, self._push_counter)

    def restore(self, token: Optional[Checkpoint]) -> None:
        if token is None:
            return
        self._restores.increment()
        repair = self.repair
        self._tos = token[0]
        self._depth = token[1]
        if repair is RepairMechanism.TOS_POINTER_AND_CONTENTS:
            if self.contents_depth == 1:
                self._stack[self._tos] = token[2]
                self._valid[self._tos] = True
            else:
                for offset, value in enumerate(token[2]):
                    index = (self._tos - offset) % self.entries
                    self._stack[index] = value
                    self._valid[index] = True
        elif repair is RepairMechanism.FULL_STACK:
            self._stack = list(token[2])
            self._valid = list(token[3])
        elif repair is RepairMechanism.VALID_BITS:
            horizon = token[2]
            for index in range(self.entries):
                if self._writer[index] > horizon:
                    self._valid[index] = False

    # -- misc --------------------------------------------------------------
    def clone(self) -> "CircularRas":
        twin = CircularRas(self.entries, self.repair, self.contents_depth)
        twin._stack = list(self._stack)
        twin._tos = self._tos
        twin._depth = self._depth
        twin._valid = list(self._valid)
        twin._writer = list(self._writer)
        twin._push_counter = self._push_counter
        return twin

    def logical_entries(self) -> List[int]:
        result = []
        index = self._tos
        for _ in range(self._depth):
            result.append(self._stack[index])
            index = (index - 1) % self.entries
        return result

    @property
    def depth(self) -> int:
        return self._depth


class LinkedRas(BaseRas):
    """Jourdan-style self-checkpointing RAS (linked entries in a pool)."""

    def __init__(self, logical_entries: int, overprovision: int = 4) -> None:
        if logical_entries < 1 or overprovision < 1:
            raise ConfigError("LinkedRas needs positive sizes")
        super().__init__("ras[self-checkpoint]")
        self.logical_size = logical_entries
        self.pool_size = logical_entries * overprovision
        self._address: List[int] = [0] * self.pool_size
        self._next: List[int] = [-1] * self.pool_size
        self._tos = -1  # -1 = empty stack
        self._alloc = 0

    def push(self, address: int) -> None:
        self._pushes.increment()
        slot = self._alloc
        self._alloc = (self._alloc + 1) % self.pool_size
        if slot == self._tos or self._is_live(slot):
            self._overflows.increment()
        self._address[slot] = address
        self._next[slot] = self._tos
        self._tos = slot

    def _is_live(self, slot: int) -> bool:
        """Is ``slot`` reachable from the current TOS? (stats only)

        Bounded walk: the chain cannot meaningfully exceed the pool.
        """
        index = self._tos
        for _ in range(self.pool_size):
            if index == -1:
                return False
            if index == slot:
                return True
            index = self._next[index]
        return False

    def pop(self) -> Optional[int]:
        self._pops.increment()
        if self._tos == -1:
            self._underflows.increment()
            return None
        value = self._address[self._tos]
        self._tos = self._next[self._tos]
        return value

    def top(self) -> Optional[int]:
        if self._tos == -1:
            return None
        return self._address[self._tos]

    def checkpoint(self) -> Optional[Checkpoint]:
        # Self-checkpointing: the pointer alone preserves contents,
        # because pops never destroy entries and pushes never overwrite
        # (until pool recycling — the cost the paper points out).
        return (self._tos,)

    def restore(self, token: Optional[Checkpoint]) -> None:
        if token is None:
            return
        self._restores.increment()
        self._tos = token[0]

    def clone(self) -> "LinkedRas":
        twin = LinkedRas(self.logical_size, self.pool_size // self.logical_size)
        twin._address = list(self._address)
        twin._next = list(self._next)
        twin._tos = self._tos
        twin._alloc = self._alloc
        return twin

    def logical_entries(self) -> List[int]:
        result = []
        index = self._tos
        for _ in range(self.pool_size):
            if index == -1:
                break
            result.append(self._address[index])
            index = self._next[index]
        return result


class ChampSimRas(BaseRas):
    """Port of ChampSim's ``return_stack`` (``btb/basic_btb``).

    Cross-validation target: `repro.corpus.diffcheck` replays traces
    through this class and an independent straight-line transliteration
    of the C++ side by side. Three behaviours distinguish it from
    :class:`CircularRas`:

    * **bounded deque** — a push beyond capacity drops the *oldest*
      entry (``pop_front``) instead of wrapping over the newest;
    * **call sites, not return addresses** — the stack stores the call
      instruction's address, and a prediction adds the learned call
      instruction size;
    * **call-size trackers** — a direct-mapped table (indexed by the
      call site's low bits) learns each call's instruction size at
      return time, but only when the apparent size is plausible
      (``<= 10`` bytes, the largest x86 call encoding ChampSim
      accepts). Returns *below* their call site are counted (and, in
      ChampSim, warned about) as ``backwards_returns``.

    There is no repair state: like ``NONE``, wrong-path pushes and pops
    persist, so :meth:`checkpoint`/:meth:`restore` are no-ops. The
    native API (:meth:`push_call` / :meth:`prediction` /
    :meth:`calibrate_call_size`) mirrors the C++ exactly; the generic
    :class:`BaseRas` methods adapt it to engines that push return
    addresses and pop predictions.
    """

    #: ChampSim's ``num_call_size_trackers`` (a power of two).
    NUM_CALL_SIZE_TRACKERS = 1024
    #: Initial tracker value — ChampSim's x86 default call size, which
    #: is also this ISA's fixed instruction width.
    DEFAULT_CALL_SIZE = 4
    #: Largest apparent call size the calibration accepts, in bytes.
    MAX_CALL_SIZE = 10
    #: ChampSim warns about the first ten backwards returns, then stops.
    BACKWARDS_WARNING_LIMIT = 10

    def __init__(self, entries: int,
                 num_call_size_trackers: int = NUM_CALL_SIZE_TRACKERS) -> None:
        if entries < 1:
            raise ConfigError("RAS needs at least one entry")
        if num_call_size_trackers < 1 or \
                num_call_size_trackers & (num_call_size_trackers - 1):
            raise ConfigError("num_call_size_trackers must be a power of two")
        super().__init__("ras[champsim]")
        self.entries = entries
        self._stack: List[int] = []
        self._trackers: List[int] = (
            [self.DEFAULT_CALL_SIZE] * num_call_size_trackers)
        self._mask = num_call_size_trackers - 1
        self._backwards = self.stats.counter("backwards_returns")
        self._calibrations = self.stats.counter("calibrations")
        self._warnings_left = self.BACKWARDS_WARNING_LIMIT

    # -- native ChampSim API ---------------------------------------------
    def prediction(self) -> Optional[int]:
        """Predicted return target: top call site + its learned size.

        ``None`` when the stack is empty (the C++ returns the null
        address, which likewise never matches a real target).
        """
        if not self._stack:
            return None
        target = self._stack[-1]
        return target + self._trackers[target & self._mask]

    def push_call(self, ip: int) -> None:
        """Record a call instruction's address (C++ ``push``)."""
        self._pushes.increment()
        self._stack.append(ip)
        if len(self._stack) > self.entries:
            del self._stack[0]  # deque pop_front: drop the oldest
            self._overflows.increment()

    def calibrate_call_size(self, branch_target: int) -> None:
        """Consume the top call at return time and learn its size.

        Mirrors the C++ exactly: an empty stack does nothing (counted
        here as an underflow for diagnostics); a return landing below
        its call site bumps the backwards counter; the absolute
        call-to-target distance updates the tracker only when it fits a
        plausible call encoding (``<= MAX_CALL_SIZE``).
        """
        if not self._stack:
            self._underflows.increment()
            return
        self._pops.increment()
        call_ip = self._stack.pop()
        if call_ip > branch_target:
            self._backwards.increment()
            if self._warnings_left:
                self._warnings_left -= 1
            size = call_ip - branch_target
        else:
            size = branch_target - call_ip
        if size <= self.MAX_CALL_SIZE:
            self._trackers[call_ip & self._mask] = size
            self._calibrations.increment()

    # -- BaseRas interface -----------------------------------------------
    def push(self, address: int) -> None:
        # Generic engines push the fall-through return address
        # (call + WORD_SIZE); recover the call site it implies.
        self.push_call(address - WORD_SIZE)

    def pop(self) -> Optional[int]:
        # Predict-time pop: the resolved target is not known yet, so no
        # calibration happens (the committed-trace replay path uses the
        # native API and does calibrate).
        self._pops.increment()
        if not self._stack:
            self._underflows.increment()
            return None
        value = self.prediction()
        self._stack.pop()
        return value

    def top(self) -> Optional[int]:
        return self.prediction()

    def checkpoint(self) -> Optional[Checkpoint]:
        return None  # no repair: nothing to save, like NONE

    def restore(self, token: Optional[Checkpoint]) -> None:
        if token is None:
            return

    def clone(self) -> "ChampSimRas":
        twin = ChampSimRas(self.entries, self._mask + 1)
        twin._stack = list(self._stack)
        twin._trackers = list(self._trackers)
        twin._warnings_left = self._warnings_left
        return twin

    def logical_entries(self) -> List[int]:
        # Top-first *predicted return addresses*, the closest analogue
        # of what the other organisations report.
        mask = self._mask
        trackers = self._trackers
        return [ip + trackers[ip & mask] for ip in reversed(self._stack)]

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def call_size_trackers(self) -> List[int]:
        """The tracker table (tests and diagnostics only)."""
        return list(self._trackers)

    @property
    def backwards_returns(self) -> int:
        return self._backwards.value


def make_ras(entries: int, repair: RepairMechanism,
             self_checkpoint_overprovision: int = 4,
             contents_depth: int = 1) -> BaseRas:
    """Build the stack organisation implied by ``repair``."""
    if repair is RepairMechanism.SELF_CHECKPOINT:
        return LinkedRas(entries, self_checkpoint_overprovision)
    if repair is RepairMechanism.CHAMPSIM:
        return ChampSimRas(entries)
    return CircularRas(entries, repair, contents_depth)
