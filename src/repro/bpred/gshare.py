"""The gshare predictor (McFarling, 1993).

Global history XORed with the branch PC indexes one table of 2-bit
counters — stronger than GAg at equal size because the XOR spreads
different branches with the same history across the table.
"""

from __future__ import annotations

from repro.bpred.twobit import CounterTable
from repro.isa.opcodes import WORD_SIZE


class GsharePredictor:
    """history XOR pc -> 2-bit counters, commit-time update."""

    __slots__ = ("history_bits", "history", "_table")

    def __init__(self, entries: int = 4096) -> None:
        self._table = CounterTable(entries, bits=2)
        self.history_bits = entries.bit_length() - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc // WORD_SIZE) ^ self.history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, outcome: bool) -> None:
        self._table.update(self._index(pc), outcome)
        self.history = ((self.history << 1) | int(outcome)) & (
            (1 << self.history_bits) - 1
        )
