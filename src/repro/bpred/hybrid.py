"""The McFarling two-component hybrid direction predictor.

Combines the 4K GAg and 1K x 10 PAg with a 4K-entry selector of 2-bit
counters indexed by global history, exactly as the paper's Table 1
describes. The selector counter leans toward the component it names:
high values choose the global component, low values the local one, and
it trains toward whichever component was right when they disagree.
"""

from __future__ import annotations

from repro.bpred.gag import GAgPredictor
from repro.bpred.pag import PAgPredictor
from repro.bpred.twobit import CounterTable
from repro.stats import StatGroup


class HybridPredictor:
    """GAg/PAg hybrid with a global-history-indexed selector."""

    def __init__(
        self,
        gag_entries: int = 4096,
        pag_history_entries: int = 1024,
        pag_history_bits: int = 10,
        selector_entries: int = 4096,
    ) -> None:
        self.gag = GAgPredictor(gag_entries)
        self.pag = PAgPredictor(pag_history_entries, pag_history_bits)
        self._selector = CounterTable(selector_entries, bits=2)
        self.stats = StatGroup("hybrid")
        self._accuracy = self.stats.rate("direction_accuracy")
        self._global_chosen = self.stats.counter("global_component_chosen")
        self._local_chosen = self.stats.counter("local_component_chosen")

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the conditional branch at ``pc``."""
        if self._selector.predict(self.gag.history):
            self._global_chosen.increment()
            return self.gag.predict(pc)
        self._local_chosen.increment()
        return self.pag.predict(pc)

    def update(self, pc: int, outcome: bool) -> None:
        """Commit-time training of both components and the selector."""
        global_pred = self.gag.predict(pc)
        local_pred = self.pag.predict(pc)
        if global_pred != local_pred:
            # Train the selector toward the component that was correct.
            self._selector.update(self.gag.history, global_pred == outcome)
        self.pag.update(pc, outcome)
        self.gag.update(pc, outcome)  # last: shifts the global history

    def record_outcome(self, correct: bool) -> None:
        """Book-keeping hook for the front end's accuracy statistics."""
        self._accuracy.record(correct)
