"""Saturating-counter primitives shared by every direction predictor."""

from __future__ import annotations

from typing import List


class SaturatingCounter:
    """An n-bit saturating up/down counter (default: the classic 2-bit)."""

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: int = None) -> None:  # type: ignore[assignment]
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        # Weakly-taken initialisation, the conventional power-on state.
        self.value = (self.maximum + 1) // 2 if initial is None else initial
        if not 0 <= self.value <= self.maximum:
            raise ValueError(f"initial value {self.value} out of range")

    @property
    def taken(self) -> bool:
        """The prediction this counter currently encodes."""
        return self.value > self.maximum // 2

    def update(self, outcome: bool) -> None:
        if outcome:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class CounterTable:
    """A direct-mapped table of n-bit saturating counters.

    Stored as a flat list of ints (not counter objects) because these
    tables sit on the per-instruction hot path of every simulation.
    """

    __slots__ = ("bits", "maximum", "entries", "_table", "_threshold")

    def __init__(self, entries: int, bits: int = 2) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        self.entries = entries
        self._threshold = self.maximum // 2
        self._table: List[int] = [(self.maximum + 1) // 2] * entries

    def index_of(self, key: int) -> int:
        return key & (self.entries - 1)

    def predict(self, key: int) -> bool:
        """True when the counter at ``key`` predicts taken."""
        return self._table[key & (self.entries - 1)] > self._threshold

    def value(self, key: int) -> int:
        return self._table[key & (self.entries - 1)]

    def update(self, key: int, outcome: bool) -> None:
        index = key & (self.entries - 1)
        value = self._table[index]
        if outcome:
            if value < self.maximum:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1
