"""Shadow-checkpoint slot accounting.

Real processors keep branch checkpoints (register maps, TOS pointers,
...) in a limited pool of shadow-state slots — 4 on the MIPS R10000,
about 20 on the Alpha 21264. When every slot is busy, a newly predicted
branch proceeds *without* a checkpoint: if it later mispredicts, the
return-address stack cannot be repaired for it. The A2 ablation bench
sweeps this limit.
"""

from __future__ import annotations

from typing import Optional

from repro.stats import StatGroup


class ShadowCheckpointPool:
    """Counts in-flight checkpoints against a (possibly unlimited) budget."""

    def __init__(self, slots: Optional[int] = None) -> None:
        """``slots=None`` models unlimited shadow state."""
        if slots is not None and slots < 0:
            raise ValueError("slots must be None or >= 0")
        self.slots = slots
        self.in_use = 0
        self.stats = StatGroup("shadow_checkpoints")
        self._acquired = self.stats.counter("acquired")
        self._exhausted = self.stats.counter("exhausted")

    def try_acquire(self) -> bool:
        """Reserve one slot; False when the pool is exhausted."""
        if self.slots is not None and self.in_use >= self.slots:
            self._exhausted.increment()
            return False
        self.in_use += 1
        self._acquired.increment()
        return True

    def release(self) -> None:
        """Return one slot (at branch resolution or squash)."""
        if self.in_use <= 0:
            raise RuntimeError("release without matching acquire")
        self.in_use -= 1

    @property
    def exhausted_count(self) -> int:
        return self._exhausted.value
