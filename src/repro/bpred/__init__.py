"""Branch prediction: direction predictors, BTB, and the return-address
stack with the paper's repair mechanisms.

Composition mirrors the paper's Table 1 front end:

* :class:`HybridPredictor` — McFarling-style GAg + PAg with a selector;
* :class:`BranchTargetBuffer` — decoupled, taken-branches-only;
* :class:`CircularRas` / :class:`LinkedRas` — the return-address stack,
  parameterised by :class:`~repro.config.RepairMechanism`;
* :class:`FrontEndPredictor` — the facade the pipelines talk to.
"""

from repro.bpred.twobit import SaturatingCounter, CounterTable
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.gag import GAgPredictor
from repro.bpred.gshare import GsharePredictor
from repro.bpred.pag import PAgPredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.direction import DIRECTION_KINDS, make_direction_predictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.target_cache import TargetCache
from repro.bpred.ras import (
    BaseRas,
    ChampSimRas,
    CircularRas,
    LinkedRas,
    make_ras,
)
from repro.bpred.repair import ShadowCheckpointPool
from repro.bpred.confidence import JrsConfidenceEstimator
from repro.bpred.predictor import FrontEndPredictor, Prediction

__all__ = [
    "BaseRas",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "ChampSimRas",
    "CircularRas",
    "CounterTable",
    "DIRECTION_KINDS",
    "FrontEndPredictor",
    "GAgPredictor",
    "GsharePredictor",
    "HybridPredictor",
    "JrsConfidenceEstimator",
    "LinkedRas",
    "PAgPredictor",
    "Prediction",
    "SaturatingCounter",
    "ShadowCheckpointPool",
    "TargetCache",
    "make_direction_predictor",
    "make_ras",
]
