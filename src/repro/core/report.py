"""One-shot reproduction report.

``build_report`` regenerates the paper's tables and figures in one pass
and renders them as a single text document — the programmatic twin of
running the whole benchmark harness. The CLI exposes it as
``repro-sim report [--out FILE]``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro import __version__
from repro.core import tables as builders
from repro.stats.tables import format_table
from repro.workloads.characterize import table2 as build_table2
from repro.workloads.profiles import BENCHMARK_NAMES

#: The sections of a standard report, in paper order. Each entry is
#: (section id, human title, builder or None for the table2 special
#: case, include-in-quick-report, pass-the-names-argument). Sections
#: with curated default benchmark subsets (F3, the ablations) keep
#: their defaults rather than sweeping every benchmark.
_SECTIONS = (
    ("T1", "baseline machine model", builders.table1, True, False),
    ("T2", "benchmark summary", None, True, True),
    ("T3", "baseline control-flow prediction",
     builders.table3_baseline, True, True),
    ("T4", "BTB-only return prediction", builders.table4_btb_only, True, True),
    ("F1", "hit rates by repair mechanism",
     builders.fig_hit_rates, True, True),
    ("F2", "speedup from repair", builders.fig_speedup, True, True),
    ("F3", "stack-depth sensitivity", builders.fig_stack_depth, True, False),
    ("F4", "multipath stack organisations",
     builders.fig_multipath, False, False),
    ("A1", "all repair mechanisms", builders.ablation_mechanisms, False, False),
    ("A2", "shadow-checkpoint slots",
     builders.ablation_shadow_slots, False, False),
    ("A7", "direction-predictor families",
     builders.ablation_direction_predictors, False, False),
    ("A8", "checkpointed-contents depth",
     builders.ablation_contents_depth, False, False),
)


def report_section_ids(full: bool = True) -> List[str]:
    """The section ids a report will contain."""
    return [sid for sid, _, _, quick, _ in _SECTIONS if full or quick]


def build_report(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
    full: bool = False,
    progress=None,
    executor=None,
) -> str:
    """Build the text report.

    Args:
        names: benchmarks to include where a builder takes names.
        seed, scale: experiment knobs (see DESIGN.md).
        full: include the slow sections (multipath, ablations).
        progress: optional callable invoked with each section id.
        executor: optional :class:`~repro.core.executor.SweepExecutor`
            shared by every section (parallelism + result caching).
    """
    started = time.time()
    parts: List[str] = [
        "RETURN-ADDRESS-STACK REPAIR — reproduction report",
        f"repro {__version__} | seed={seed} scale={scale} "
        f"benchmarks={','.join(names)}",
        "=" * 72,
    ]
    for section_id, title, builder, quick, takes_names in _SECTIONS:
        if not full and not quick:
            continue
        if progress is not None:
            progress(section_id)
        parts.append("")
        parts.append(f"[{section_id}] {title}")
        parts.append("-" * 72)
        if builder is None:
            parts.append(build_table2(names, seed=seed, scale=scale))
            continue
        if section_id == "T1":
            table_title, headers, rows = builder()
        elif takes_names:
            table_title, headers, rows = builder(
                names=names, seed=seed, scale=scale, executor=executor)
        else:
            table_title, headers, rows = builder(
                seed=seed, scale=scale, executor=executor)
        parts.append(format_table(headers, rows, title=table_title))
    parts.append("")
    parts.append(f"(generated in {time.time() - started:.1f}s; see "
                 "EXPERIMENTS.md for the paper-vs-measured discussion)")
    return "\n".join(parts)
