"""Parallel experiment execution with on-disk result caching.

Every table and figure of the reproduction decomposes into independent
``(workload, machine config, engine)`` simulations, so the harness is
embarrassingly parallel. This module gives the experiment layer one
scheduling point:

* :class:`ExperimentJob` names one simulation. When the workload is a
  :class:`~repro.core.experiment.WorkloadSpec` the job has a stable
  identity and is cacheable; passing a raw
  :class:`~repro.isa.program.Program` still runs, just uncached.
* :class:`JobResult` is the picklable, JSON-able summary a worker
  process sends back — headline numbers plus every counter and rate the
  engine recorded, so table builders never need the live CPU object.
* :class:`ResultCache` is a content-addressed store: the key hashes the
  workload identity, :meth:`MachineConfig.fingerprint`, the engine, and
  a fingerprint of the installed ``repro`` sources, so editing any
  simulator file invalidates every cached result automatically.
* :class:`SweepExecutor` resolves cache hits, fans the misses out over a
  ``ProcessPoolExecutor`` (fork-based where available), and falls back
  to deterministic in-process execution for ``jobs=1`` or when the
  platform refuses to give us a pool. Results always come back in
  submission order, so parallel and serial runs are bit-identical.

Telemetry (see docs/observability.md): every ``SweepExecutor.run``
opens a ``sweep/run`` span, every job a ``sweep/job`` span, and cache
probes ``cache/get``/``cache/put`` spans; each sweep additionally
aggregates a deterministic per-sweep metrics registry from its results
(in submission order, so parallel == serial bit-for-bit) and appends
one entry to the run ledger under the cache root. ``--no-telemetry``
or ``REPRO_TELEMETRY=0`` turns all of it off.

Environment knobs (see docs/performance.md):

* ``REPRO_JOBS`` — default worker count (default 1).
* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-sim``).
* ``REPRO_CACHE=0`` — disable the default cache entirely.
* ``REPRO_TELEMETRY=0`` — disable metrics, spans, and the run ledger.
* ``REPRO_BACKEND`` — ``local`` (default) or ``cluster``: route cache
  misses to a fleet of ``repro-sim cluster worker`` processes via the
  :mod:`repro.cluster` coordinator (see docs/distributed.md). With no
  reachable coordinator or no registered worker the executor degrades
  to the local process pool; either way rows stay bit-identical.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import datetime
import functools
import hashlib
import json
import multiprocessing
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Union

import repro
from repro import telemetry
from repro.config.machine import MachineConfig
from repro.core.experiment import (
    WorkloadSpec,
    build_program,
    run_cycle,
    run_fast,
    run_multipath,
)
from repro.errors import ClusterUnavailable, ConfigError
from repro.fastsim.batch import replay_shard_batched
from repro.isa.program import Program
from repro.obs import context as tracectx
from repro.obs.capture import TraceCapture
from repro.obs.store import TraceStore
from repro.stats.counters import Counter, Rate
from repro.telemetry import MetricsRegistry, RunLedger, span
from repro.telemetry import state as telemetry_state
from repro.telemetry.spans import Span, recorder
from repro.trace.replay import TraceShardSpec, replay_shard

#: Engines a job may name: the three simulator families, their
#: columnar fast twins, and the two trace-shard replay paths (capacity
#: sweeps over recorded control flow): ``"trace"`` streams one event at
#: a time, ``"batch"`` decodes block-at-a-time into flat arrays;
#: ``"cycle-fast"`` / ``"multipath-fast"`` are the work-list rewrites
#: of the execution-driven CPUs (bit-identical counters, several times
#: the throughput; see docs/engines.md and docs/performance.md).
ENGINES = ("cycle", "cycle-fast", "fast", "multipath", "multipath-fast",
           "trace", "batch", "diffcheck")

#: The engines that replay recorded trace shards (their jobs carry a
#: TraceShardSpec instead of a workload). ``"diffcheck"`` replays a
#: shard through the configured RAS variant *and* the reference
#: ChampSim model side by side (:mod:`repro.corpus.diffcheck`),
#: reporting divergence counts — cached by shard checksum like any
#: other trace job.
TRACE_ENGINES = ("trace", "batch", "diffcheck")

#: Where cache misses execute: ``"local"`` (in-process / process pool)
#: or ``"cluster"`` (work-stealing remote workers, docs/distributed.md).
BACKENDS = ("local", "cluster")


def default_backend() -> str:
    """Default execution backend, overridable via REPRO_BACKEND."""
    return os.environ.get("REPRO_BACKEND", "local")

#: Bump when the cached JobResult schema changes shape.
CACHE_SCHEMA = 1

#: In-process count of actual simulator invocations (cache misses that
#: really simulated). Worker processes keep their own copies; with the
#: serial path this is an exact invocation counter, which the tests use
#: to prove that warm-cache reruns never touch a simulator.
SIMULATION_CALLS = 0


def simulation_calls() -> int:
    """Simulator invocations made by *this* process so far."""
    return SIMULATION_CALLS


def default_jobs() -> int:
    """Default worker count, overridable via REPRO_JOBS."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file.

    Part of each cache key: editing any simulator source produces a new
    fingerprint, so stale results can never be served after a code
    change — no manual cache flushing, no version bookkeeping.
    """
    package_root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Jobs and results.

@dataclasses.dataclass(frozen=True)
class ExperimentJob:
    """One independent simulation: workload x config x engine.

    ``workload`` is normally a :class:`WorkloadSpec` (cacheable and
    cheap to ship to worker processes — each worker rebuilds and
    memoises the program locally). A prebuilt :class:`Program` is also
    accepted for ad-hoc experiments; such jobs run fine but bypass the
    cache because a raw program has no stable identity to key on. The
    ``"trace"`` engine instead takes a
    :class:`~repro.trace.replay.TraceShardSpec` — the worker streams
    the shard from disk, and the cache keys on the shard *checksum*, so
    a cached replay survives corpus moves but never a content change.
    """

    workload: Union[WorkloadSpec, Program, TraceShardSpec]
    config: MachineConfig
    engine: str = "cycle"
    max_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if (self.engine in TRACE_ENGINES) != isinstance(self.workload,
                                                        TraceShardSpec):
            raise ConfigError(
                f"engine {self.engine!r} is incompatible with workload "
                f"{type(self.workload).__name__}; trace shards pair with "
                f"the {TRACE_ENGINES} engines only")

    @property
    def cacheable(self) -> bool:
        if isinstance(self.workload, TraceShardSpec):
            return self.workload.checksum is not None
        return isinstance(self.workload, WorkloadSpec)

    def program(self) -> Program:
        if isinstance(self.workload, WorkloadSpec):
            return build_program(self.workload)
        if isinstance(self.workload, TraceShardSpec):
            raise ConfigError(
                "trace-shard jobs replay recorded events; they have no "
                "program to build")
        return self.workload

    def cache_key(self) -> Optional[str]:
        """Content hash identifying this job's inputs, or ``None`` when
        the workload has no stable identity (raw program, or a shard
        spec without a checksum)."""
        if isinstance(self.workload, TraceShardSpec):
            if self.workload.checksum is None:
                return None
            workload_id: Dict[str, object] = {
                "shard": self.workload.name,
                "checksum": self.workload.checksum,
            }
        elif isinstance(self.workload, WorkloadSpec):
            workload_id = {
                "name": self.workload.name,
                "seed": self.workload.seed,
                "scale": self.workload.scale,
            }
        else:
            return None
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "workload": workload_id,
                "config": self.config.fingerprint(),
                "engine": self.engine,
                "max_instructions": self.max_instructions,
                "code": code_fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class JobResult:
    """Picklable summary of one simulation.

    Carries the headline numbers plus every counter and rate the engine
    registered, so builders can ask for anything a live ``SimResult``
    offered without holding simulator objects (which do not survive a
    trip through a process pool or the on-disk cache).

    ``wall_time_s`` is the measured simulation time of the process that
    actually ran the job; a cache hit serves the *original* cost, with
    ``from_cache`` flipped to ``True`` by the executor, so summaries
    can report both provenance and the time a hit saved.
    """

    engine: str
    instructions: int
    cycles: float
    ipc: float
    counters: Dict[str, int]
    rates: Dict[str, Optional[float]]
    wall_time_s: float = 0.0
    from_cache: bool = False

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def rate(self, name: str) -> Optional[float]:
        return self.rates.get(name)

    @property
    def return_accuracy(self) -> Optional[float]:
        return self.rate("return_accuracy")

    @property
    def cond_accuracy(self) -> Optional[float]:
        return self.rate("cond_accuracy")

    @property
    def indirect_accuracy(self) -> Optional[float]:
        return self.rate("indirect_accuracy")

    @property
    def btb_hit_rate(self) -> Optional[float]:
        return self.rate("btb_hit_rate")

    def as_dict(self) -> Dict[str, object]:
        """Headline stats, same keys as ``SimResult.as_dict``."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "cond_accuracy": self.cond_accuracy,
            "return_accuracy": self.return_accuracy,
            "indirect_accuracy": self.indirect_accuracy,
            "mispredictions": self.counter("mispredictions"),
            "squashed": self.counter("squashed"),
            "ras_overflows": self.counter("ras_overflows"),
            "ras_underflows": self.counter("ras_underflows"),
        }

    def to_json_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "JobResult":
        return cls(
            engine=str(data["engine"]),
            instructions=int(data["instructions"]),  # type: ignore[arg-type]
            cycles=float(data["cycles"]),  # type: ignore[arg-type]
            ipc=float(data["ipc"]),  # type: ignore[arg-type]
            counters={str(k): int(v) for k, v in data["counters"].items()},  # type: ignore[union-attr]
            rates={
                str(k): (None if v is None else float(v))
                for k, v in data["rates"].items()  # type: ignore[union-attr]
            },
            # absent in pre-telemetry cache entries; default sanely so
            # old entries still load as (uncosted) fresh-looking results
            wall_time_s=float(data.get("wall_time_s", 0.0) or 0.0),
            from_cache=bool(data.get("from_cache", False)),
        )


def _group_stats(group) -> Dict[str, Dict[str, object]]:
    counters: Dict[str, int] = {}
    rates: Dict[str, Optional[float]] = {}
    for name in group.names():
        stat = group[name]
        if isinstance(stat, Counter):
            counters[name] = stat.value
        elif isinstance(stat, Rate):
            rates[name] = stat.value
    return {"counters": counters, "rates": rates}


def _run_trace_job(job: ExperimentJob) -> JobResult:
    """Replay a trace shard through the RAS the job's config describes.

    Replay semantics are exactly
    :meth:`repro.trace.replay.TraceRasEvaluator.evaluate` (RAS with BTB
    fallback), so corpus sweeps reproduce the in-memory path
    bit-for-bit — whichever replay engine runs: ``"trace"`` streams
    events, ``"batch"`` decodes block-at-a-time
    (:func:`repro.fastsim.batch.replay_shard_batched`, bit-identical
    counters, asserted by the differential tests). ``instructions``
    reports the shard's control-event count; there is no cycle model
    here, so cycles/ipc are zero.
    """
    shard = job.workload
    assert isinstance(shard, TraceShardSpec)
    predictor = job.config.predictor
    if job.engine == "diffcheck":
        from repro.corpus.diffcheck import diff_shard
        report = diff_shard(shard, ras_entries=predictor.ras_entries,
                            mechanism=predictor.ras_repair)
        returns = report.returns
        return JobResult(
            engine=job.engine,
            instructions=report.events,
            cycles=0.0,
            ipc=0.0,
            counters={
                "returns": returns,
                "return_hits": report.ours_hits,
                "reference_hits": report.reference_hits,
                "divergences": report.divergences,
                "calls": shard.calls or 0,
            },
            rates={
                "return_accuracy": (report.ours_hits / returns
                                    if returns else None),
                "reference_accuracy": (report.reference_hits / returns
                                       if returns else None),
                "agreement": (1.0 - report.divergences / returns
                              if returns else None),
            },
        )
    if job.engine == "batch":
        result = replay_shard_batched(shard,
                                      ras_entries=predictor.ras_entries,
                                      mechanism=predictor.ras_repair)
    else:
        result = replay_shard(shard, ras_entries=predictor.ras_entries,
                              mechanism=predictor.ras_repair)
    return JobResult(
        engine=job.engine,
        instructions=shard.events or 0,
        cycles=0.0,
        ipc=0.0,
        counters={
            "returns": result.returns,
            "return_hits": result.hits,
            "ras_overflows": result.overflows,
            "ras_underflows": result.underflows,
            "calls": shard.calls or 0,
        },
        rates={"return_accuracy": result.accuracy},
    )


def _workload_label(job: ExperimentJob) -> str:
    if isinstance(job.workload, (WorkloadSpec, TraceShardSpec)):
        return job.workload.name
    return "program"


def run_job(job: ExperimentJob) -> JobResult:
    """Execute one job in this process and summarise the outcome.

    This is the worker entry point for both the serial path and the
    process pool (it is module-level precisely so spawn-based platforms
    can pickle it). Each invocation is timed (``wall_time_s`` on the
    result) and traced as one ``sweep/job`` span.
    """
    global SIMULATION_CALLS
    SIMULATION_CALLS += 1
    started = time.perf_counter()
    with span("sweep/job", engine=job.engine, workload=_workload_label(job)):
        result = _dispatch_job(job)
    return dataclasses.replace(
        result, wall_time_s=time.perf_counter() - started, from_cache=False)


def _run_job_traced(job: ExperimentJob, wire: Dict[str, object],
                    ) -> "tuple[JobResult, List[Dict[str, object]]]":
    """Pool-worker entry point when trace propagation is active.

    Rebuilds the submitter's trace context from its wire form, runs the
    job under it, and returns every span recorded for that trace along
    with the result — the pool equivalent of a cluster worker attaching
    its span batch to a ``complete`` payload. Module-level so
    spawn-based platforms can pickle it, like :func:`run_job`.
    """
    ctx = tracectx.from_wire(wire)
    if ctx is None:
        return run_job(job), []
    collected: List[Dict[str, object]] = []

    def _collect(item: Span) -> None:
        if item.trace_id == ctx.trace_id:
            collected.append(item.to_json_dict())

    token = recorder.subscribe(_collect)
    try:
        with tracectx.activate(ctx):
            result = run_job(job)
    finally:
        recorder.unsubscribe(token)
    return result, collected


def _dispatch_job(job: ExperimentJob) -> JobResult:
    if job.engine in TRACE_ENGINES:
        return _run_trace_job(job)
    program = job.program()
    if job.engine == "cycle":
        result, cpu = run_cycle(program, job.config,
                                max_instructions=job.max_instructions)
        stats = _group_stats(result.group)
        stats["rates"]["btb_hit_rate"] = cpu.frontend.btb.hit_rate
        return JobResult(engine=job.engine, instructions=result.instructions,
                         cycles=result.cycles, ipc=result.ipc, **stats)
    if job.engine == "cycle-fast":
        from repro.fastsim.cycle import run_cycle_fast
        result, cpu = run_cycle_fast(program, job.config,
                                     max_instructions=job.max_instructions)
        stats = _group_stats(result.group)
        stats["rates"]["btb_hit_rate"] = cpu.frontend.btb.hit_rate
        return JobResult(engine=job.engine, instructions=result.instructions,
                         cycles=result.cycles, ipc=result.ipc, **stats)
    if job.engine == "multipath":
        result, _ = run_multipath(program, job.config,
                                  max_instructions=job.max_instructions)
        stats = _group_stats(result.group)
        return JobResult(engine=job.engine, instructions=result.instructions,
                         cycles=result.cycles, ipc=result.ipc, **stats)
    if job.engine == "multipath-fast":
        from repro.fastsim.multipath import run_multipath_fast
        result, _ = run_multipath_fast(program, job.config,
                                       max_instructions=job.max_instructions)
        stats = _group_stats(result.group)
        return JobResult(engine=job.engine, instructions=result.instructions,
                         cycles=result.cycles, ipc=result.ipc, **stats)
    fast = run_fast(program, job.config)
    stats = _group_stats(fast.group)
    return JobResult(engine=job.engine, instructions=fast.instructions,
                     cycles=fast.estimated_cycles, ipc=fast.estimated_ipc,
                     **stats)


# ----------------------------------------------------------------------
# On-disk cache.

class ResultCache:
    """Content-addressed store of :class:`JobResult` JSON blobs.

    Layout: ``<root>/v<schema>/<key[:2]>/<key>.json``. Entries are
    immutable — a key encodes every input including the code
    fingerprint, so a hit is always safe to serve and invalidation is
    just "the key changed". Corrupt, truncated, or stale entries are
    treated as misses, never as errors.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        #: The un-versioned cache root; shared artifacts that must
        #: survive schema bumps (the run ledger) live directly under it.
        self.base_root = pathlib.Path(root)
        self.root = self.base_root / f"v{CACHE_SCHEMA}"

    @staticmethod
    def default_root() -> pathlib.Path:
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            return pathlib.Path(env)
        return pathlib.Path.home() / ".cache" / "repro-sim"

    @classmethod
    def default(cls) -> Optional["ResultCache"]:
        """The process-default cache, or ``None`` when REPRO_CACHE=0."""
        if os.environ.get("REPRO_CACHE", "1") == "0":
            return None
        return cls(cls.default_root())

    @classmethod
    def default_ledger_path(cls) -> pathlib.Path:
        """Where the run ledger lives under the default cache root.

        The one public spelling of the ledger location: the CLI and the
        service layer both resolve it here instead of joining private
        path pieces themselves.
        """
        from repro.telemetry import LEDGER_FILENAME
        return cls.default_root() / LEDGER_FILENAME

    @property
    def ledger_path(self) -> pathlib.Path:
        """The run-ledger file paired with this cache root."""
        from repro.telemetry import LEDGER_FILENAME
        return self.base_root / LEDGER_FILENAME

    def stats(self) -> Dict[str, object]:
        """On-disk occupancy: entry count and byte total under the
        current schema root.

        Served by ``GET /metricz`` and usable by operators to size
        cache eviction; a missing or unreadable root reads as empty
        rather than raising (the same degraded-mode stance as
        :meth:`get`/:meth:`put`).
        """
        entries = 0
        size = 0
        try:
            for path in self.root.rglob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        except OSError:
            pass
        return {
            "root": str(self.base_root),
            "schema": CACHE_SCHEMA,
            "entries": entries,
            "bytes": size,
        }

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[JobResult]:
        with span("cache/get") as probe:
            result = self._read(key)
            if telemetry_state.enabled():
                outcome = "miss" if result is None else "hit"
                if probe is not None:
                    probe.set(outcome=outcome)
                telemetry.metrics().counter("cache.get",
                                            outcome=outcome).increment()
            return result

    def _read(self, key: str) -> Optional[JobResult]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:  # stale or hash-collided entry
                return None
            return JobResult.from_json_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    @staticmethod
    def _tmp_path(path: pathlib.Path) -> pathlib.Path:
        """A writer-unique sibling temp name.

        ``path.with_suffix(".tmp")`` was shared by every writer of one
        key, so two pool workers racing on the same entry could clobber
        each other's half-written temp file. pid + a random token make
        the name unique per writer (across and within processes); the
        final ``replace`` stays atomic either way.
        """
        token = os.urandom(4).hex()
        return path.parent / f"{path.name}.{os.getpid()}-{token}.tmp"

    def put(self, key: str, result: JobResult) -> None:
        """Store ``result`` under ``key`` (last writer wins).

        Entries are immutable in *content* — every writer of one key
        holds the same deterministic result — so overwrite order never
        matters; :meth:`put_if_absent` additionally reports which
        writer won, which the executor and cluster paths use to count
        each result exactly once.
        """
        with span("cache/put"):
            self._write(key, result, if_absent=False)

    def put_if_absent(self, key: str, result: JobResult) -> bool:
        """First-writer-wins put: ``True`` iff this call created the
        entry.

        Duplicate completions — a pool worker and a cluster worker
        racing, or a slow remote worker finishing a stolen job — call
        this instead of :meth:`put` so only the winning write counts in
        cache statistics and ledger entries. A corrupt or stale entry
        under ``key`` does not block the write: the repairing writer
        replaces it and wins.
        """
        with span("cache/put") as probe:
            won = self._write(key, result, if_absent=True)
            if probe is not None:
                probe.set(outcome="won" if won else "lost")
            return won

    def _write(self, key: str, result: JobResult,
               if_absent: bool) -> bool:
        path = self._path(key)
        tmp: Optional[pathlib.Path] = None
        try:
            if if_absent and self._read(key) is not None:
                return False  # a valid entry already exists: we lost
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {"key": key, "result": result.to_json_dict()}
            tmp = self._tmp_path(path)
            tmp.write_text(json.dumps(payload))
            if if_absent and not path.exists():
                # atomic create-if-missing: two racing first writers
                # cannot both link, so exactly one reports the win
                try:
                    os.link(tmp, path)
                    tmp.unlink(missing_ok=True)
                except FileExistsError:
                    tmp.unlink(missing_ok=True)
                    return False
                except OSError:
                    # filesystem without hard links: fall back to the
                    # atomic-replace path (best-effort first-writer)
                    tmp.replace(path)
            else:
                # plain put, or repairing a corrupt/stale entry: the
                # replace stays atomic so readers never see partials
                tmp.replace(path)
            if telemetry_state.enabled():
                telemetry.metrics().counter("cache.put").increment()
            return True
        except OSError:
            # a read-only cache dir degrades to "no cache"; don't
            # leave an orphaned temp file behind on partial failure
            if tmp is not None:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
            return False


# ----------------------------------------------------------------------
# The executor.

def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork-less platform
        return None


class SweepExecutor:
    """Schedules independent experiment jobs, with caching.

    ``run`` preserves submission order, so any sweep routed through the
    executor produces identical rows at every ``jobs`` setting *and*
    every backend. With the default ``local`` backend and ``jobs > 1``
    cache misses fan out over a process pool — fork-based where the
    platform offers it (workers inherit warm program caches), spawn
    otherwise. A broken pool no longer restarts the whole sweep
    serially: only the jobs the breakage swallowed are retried, under
    the same capped-backoff policy the cluster uses, degrading to
    in-process execution once the budget is spent.

    With ``backend="cluster"`` (or ``REPRO_BACKEND=cluster``) cache
    misses are shipped to a fleet of ``repro-sim cluster worker``
    processes through a work-stealing coordinator —
    ``coordinator_url`` / ``REPRO_COORDINATOR`` names an external one,
    otherwise the executor embeds its own for the sweep — with the
    result cache as the shared dedupe layer. No reachable coordinator
    or no registered worker degrades gracefully to the local path.
    See docs/distributed.md.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Union[ResultCache, None, str] = "default",
        telemetry_enabled: Optional[bool] = None,
        ledger: Union[RunLedger, str, os.PathLike, None] = "auto",
        backend: Optional[str] = None,
        coordinator_url: Optional[str] = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.backend = default_backend() if backend is None else backend
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        self.coordinator_url = coordinator_url
        if retry_policy is None:
            from repro.cluster.retry import RetryPolicy
            retry_policy = RetryPolicy()
        #: Backoff policy shared by the broken-pool retry path and (via
        #: the coordinator) the cluster's failed-job re-queue path.
        self.retry_policy = retry_policy
        #: Attribution block of the last cluster sweep (ledgered under
        #: the nondeterministic ``cluster`` entry key), or ``None``.
        self.last_cluster: Optional[Dict[str, object]] = None
        if cache == "default":
            self.cache: Optional[ResultCache] = ResultCache.default()
        else:
            self.cache = cache  # type: ignore[assignment]
        self.cache_hits = 0
        self.cache_misses = 0
        #: Per-executor telemetry override; ``None`` follows the global
        #: switch (REPRO_TELEMETRY / --no-telemetry).
        self.telemetry_enabled = telemetry_enabled
        if isinstance(ledger, RunLedger) or ledger is None:
            self.ledger: Optional[RunLedger] = ledger
        elif ledger == "auto":
            # the run ledger lives under the cache root; no cache means
            # no durable root to write under, hence no ledger
            self.ledger = (RunLedger.at_root(self.cache.base_root)
                           if self.cache is not None else None)
        else:
            self.ledger = RunLedger(ledger)
        #: Cumulative wall time of every ``run`` call on this executor.
        self.wall_time_s = 0.0
        #: Ledger ids appended by this executor, oldest first.
        self.run_ids: List[str] = []
        #: Last sweep's ledger entry and deterministic metrics registry.
        self.last_entry: Optional[Dict[str, object]] = None
        self.last_metrics: Optional[MetricsRegistry] = None
        #: Active trace capture while a sweep is in flight (see
        #: repro.obs.capture); the last sweep's trace id survives it.
        self._capture: Optional[TraceCapture] = None
        self.last_trace_id: Optional[str] = None

    def _telemetry_on(self) -> bool:
        if self.telemetry_enabled is not None:
            return self.telemetry_enabled
        return telemetry_state.enabled()

    def run(self, jobs: Sequence[ExperimentJob]) -> List[JobResult]:
        """Run every job, returning results in submission order."""
        jobs = list(jobs)
        if not self._telemetry_on() and telemetry_state.enabled():
            # executor-local opt-out: silence spans/metrics for the
            # whole sweep, including serial in-process job runs
            with telemetry_state.disabled():
                return self._run_all(jobs)
        return self._run_all(jobs)

    def _trace_store(self) -> Optional[TraceStore]:
        """Where this executor persists merged traces (beside the
        ledger), or ``None`` without a durable cache root."""
        if self.cache is None:
            return None
        return TraceStore.at_cache_root(self.cache.base_root)

    def _run_all(self, jobs: List[ExperimentJob]) -> List[JobResult]:
        started = time.perf_counter()
        self.last_cluster = None
        hits_before, misses_before = self.cache_hits, self.cache_misses
        capture = TraceCapture.begin(self._trace_store())
        self._capture = capture
        if capture is not None:
            self.last_trace_id = capture.trace_id
        try:
            with span("sweep/run", workers=self.jobs,
                      submitted=len(jobs)) as sweep_span:
                results = self._resolve(jobs)
                if sweep_span is not None:
                    sweep_span.set(
                        cache_hits=self.cache_hits - hits_before,
                        cache_misses=self.cache_misses - misses_before)
            if capture is not None:
                capture.seal()
            wall = time.perf_counter() - started
            self.wall_time_s += wall
            if jobs and telemetry_state.enabled():
                self._record_run(jobs, results,
                                 hits=self.cache_hits - hits_before,
                                 misses=self.cache_misses - misses_before,
                                 wall=wall, capture=capture)
            return results
        finally:
            self._capture = None
            if capture is not None:
                capture.close()

    def _resolve(self, jobs: List[ExperimentJob]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            key = job.cache_key() if self.cache is not None else None
            keys[index] = key
            cached = self.cache.get(key) if key else None
            if cached is not None:
                results[index] = dataclasses.replace(cached, from_cache=True)
                self.cache_hits += 1
            else:
                if key:
                    self.cache_misses += 1
                pending.append(index)
        if pending:
            for index, result in zip(pending, self._execute(
                    [jobs[i] for i in pending])):
                results[index] = result
                if keys[index] and self.cache is not None:
                    self.cache.put(keys[index], result)
        return results  # type: ignore[return-value]

    # -- telemetry ------------------------------------------------------

    @staticmethod
    def _workload_descriptor(job: ExperimentJob) -> Dict[str, object]:
        workload = job.workload
        if isinstance(workload, WorkloadSpec):
            return {"kind": "workload", "name": workload.name,
                    "seed": workload.seed, "scale": workload.scale}
        if isinstance(workload, TraceShardSpec):
            return {"kind": "shard", "name": workload.name,
                    "checksum": workload.checksum}
        return {"kind": "program"}

    @staticmethod
    def _headline(results: Sequence[JobResult]) -> Dict[str, Optional[float]]:
        """Unweighted mean of every rate present, plus mean ipc.

        Computed from results in submission order with order-insensitive
        arithmetic, so the headline block is deterministic across
        ``jobs`` settings.
        """
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for result in results:
            for name, value in result.rates.items():
                if value is None:
                    continue
                sums[name] = sums.get(name, 0.0) + value
                counts[name] = counts.get(name, 0) + 1
        headline: Dict[str, Optional[float]] = {
            name: round(sums[name] / counts[name], 6)
            for name in sorted(sums)
        }
        timed = [r.ipc for r in results if r.cycles > 0]
        if timed:
            headline["ipc"] = round(sum(timed) / len(timed), 6)
        return headline

    def sweep_metrics(self, jobs: Sequence[ExperimentJob],
                      results: Sequence[JobResult]) -> MetricsRegistry:
        """The deterministic metrics registry for one finished sweep.

        Built purely from ``(job, result)`` pairs in submission order —
        never from ambient worker state, and never from scheduling
        parameters like the worker count (that is the ledger entry's
        ``jobs`` field) — so a parallel sweep aggregates bit-identically
        to a serial one.
        """
        registry = MetricsRegistry()
        for job, result in zip(jobs, results):
            registry.counter("executor.jobs", engine=result.engine).increment()
            if result.from_cache:
                registry.counter("executor.cache_hits").increment()
            elif job.cacheable:
                registry.counter("executor.cache_misses").increment()
            else:
                registry.counter("executor.uncached_jobs").increment()
            registry.counter("executor.instructions").increment(
                result.instructions)
            for name, value in result.counters.items():
                registry.counter(f"result.{name}").increment(value)
        return registry

    def _record_run(self, jobs: List[ExperimentJob],
                    results: List[JobResult],
                    hits: int, misses: int, wall: float,
                    capture: Optional[TraceCapture] = None) -> None:
        registry = self.sweep_metrics(jobs, results)
        self.last_metrics = registry
        telemetry.metrics().merge(registry.snapshot())
        seen: Dict[str, Dict[str, object]] = {}
        for job in jobs:
            descriptor = self._workload_descriptor(job)
            seen.setdefault(json.dumps(descriptor, sort_keys=True), descriptor)
        probed = hits + misses
        cluster = self.last_cluster
        entry: Dict[str, object] = {
            "kind": "sweep",
            "ts": round(time.time(), 3),
            "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"),
            "engines": sorted({result.engine for result in results}),
            "jobs": self.jobs,
            "submitted": len(jobs),
            "workloads": list(seen.values()),
            "configs": sorted({job.config.fingerprint() for job in jobs}),
            "code": code_fingerprint(),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (round(hits / probed, 6) if probed else None),
            },
            "wall_time_s": round(wall, 6),
            "sim_time_s": round(sum(r.wall_time_s for r in results), 6),
            "headline": self._headline(results),
            "metrics": registry.snapshot(),
        }
        if cluster is not None:
            # scheduling attribution (which worker ran what, steals,
            # retries) is honest but nondeterministic, so it lives under
            # a NONDETERMINISTIC_KEYS entry key: the deterministic_view
            # of a cluster sweep stays bit-identical to the serial one
            entry["cluster"] = cluster
            self.last_cluster = None
        if capture is not None:
            # trace identity and the optional sampling profile are run
            # artifacts, not results — both sit behind
            # NONDETERMINISTIC_KEYS so deterministic_view is identical
            # with tracing on or off (asserted in tests)
            entry["trace_id"] = capture.trace_id
            profile = capture.profile_summary()
            if profile is not None:
                entry["profile"] = profile
        if self.ledger is not None:
            entry = self.ledger.append(entry)
            run_id = entry.get("run_id")
            if isinstance(run_id, str):
                self.run_ids.append(run_id)
        self.last_entry = entry

    def cache_stats(self) -> Dict[str, object]:
        """Cumulative cache statistics for CLI/JSON summaries."""
        probed = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": (round(self.cache_hits / probed, 6)
                         if probed else None),
        }

    def summary_line(self) -> Optional[str]:
        """One human line: cache hits/misses, wall time, last run id."""
        probed = self.cache_hits + self.cache_misses
        if probed == 0 and self.wall_time_s == 0.0:
            return None
        rate = (f"{100.0 * self.cache_hits / probed:.1f}% hit rate"
                if probed else "no cacheable jobs")
        parts = [f"cache: {self.cache_hits} hits, "
                 f"{self.cache_misses} misses ({rate})",
                 f"{self.wall_time_s:.2f}s"]
        if self.run_ids:
            parts.append(f"run {self.run_ids[-1]}")
        return " · ".join(parts)

    # -- execution ------------------------------------------------------

    def _execute(self, jobs: List[ExperimentJob]) -> List[JobResult]:
        if self.backend == "cluster":
            try:
                return self._execute_cluster(jobs)
            except ClusterUnavailable:
                # no coordinator / no workers: the documented graceful
                # degradation to the local process pool
                if telemetry_state.enabled():
                    telemetry.metrics().counter(
                        "executor.cluster_fallbacks").increment()
        if self.jobs > 1 and len(jobs) > 1:
            try:
                return self._execute_pool(jobs)
            except OSError:
                pass  # e.g. sandboxed semaphores; fall through to serial
        return [run_job(job) for job in jobs]

    def _execute_cluster(self, jobs: List[ExperimentJob]) -> List[JobResult]:
        """Ship this sweep's cache misses to the fleet.

        Jobs the cluster could not finish (unkeyed, terminally failed,
        dead fleet mid-batch) come back as ``None`` and are completed
        in-process, so the sweep still terminates with full rows.
        """
        from repro.cluster.backend import run_jobs_on_cluster

        remote, summary = run_jobs_on_cluster(
            jobs, cache=self.cache, coordinator_url=self.coordinator_url)
        # worker/coordinator span batches ride the batch status home;
        # they merge into the capture, not the ledger entry
        spans = summary.pop("spans", None)
        if self._capture is not None:
            self._capture.add_spans(spans)
        self.last_cluster = summary
        return [result if result is not None else run_job(job)
                for job, result in zip(jobs, remote)]

    # The pool factory is an attribute so tests can inject pools that
    # fail deterministically (see tests/test_cluster.py).
    _pool_factory = staticmethod(concurrent.futures.ProcessPoolExecutor)

    def _make_pool(self, workers: int):
        context = _fork_context()
        kwargs = {"mp_context": context} if context is not None else {}
        return self._pool_factory(max_workers=workers, **kwargs)

    def _execute_pool(self, jobs: List[ExperimentJob]) -> List[JobResult]:
        """Fan jobs over a process pool, retrying only what breaks.

        A ``BrokenProcessPool`` (a worker OOM-killed or segfaulted)
        used to abandon the pool and rerun the *whole* sweep serially;
        now each attempt keeps every finished result and re-queues only
        the jobs the breakage swallowed, backing off between attempts
        with the same capped policy the cluster's coordinator applies
        (``executor.retries`` counts the re-queued jobs). Jobs still
        failing after the retry budget finish in-process — the same
        graceful floor as before, paid only by the stragglers.
        """
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        attempt = 0
        # ship the trace context to pool workers so their sweep/job
        # spans come home with the results (fork inherits the recorder
        # but forked rings never flow back; explicit return does)
        ctx = tracectx.current()
        wire = (tracectx.to_wire(ctx)
                if ctx is not None and self._capture is not None else None)
        while pending:
            attempt += 1
            broken: List[int] = []
            with self._make_pool(min(self.jobs, len(pending))) as pool:
                futures: Dict[int, concurrent.futures.Future] = {}
                for index in pending:
                    try:
                        if wire is None:
                            futures[index] = pool.submit(run_job, jobs[index])
                        else:
                            futures[index] = pool.submit(
                                _run_job_traced, jobs[index], wire)
                    except (concurrent.futures.process.BrokenProcessPool,
                            concurrent.futures.BrokenExecutor,
                            RuntimeError):
                        broken.append(index)
                for index, future in futures.items():
                    try:
                        outcome = future.result()
                        if wire is not None and isinstance(outcome, tuple):
                            outcome, spans = outcome
                            if self._capture is not None:
                                self._capture.add_spans(spans)
                        results[index] = outcome
                    except (concurrent.futures.process.BrokenProcessPool,
                            concurrent.futures.BrokenExecutor):
                        broken.append(index)
            if not broken:
                break
            broken.sort()
            if telemetry_state.enabled():
                telemetry.metrics().counter("executor.retries").increment(
                    len(broken))
            if self.retry_policy.exhausted(attempt):
                for index in broken:
                    results[index] = run_job(jobs[index])
                break
            time.sleep(self.retry_policy.delay_s(attempt, "pool"))
            pending = broken
        return results  # type: ignore[return-value]
