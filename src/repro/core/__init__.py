"""Experiment drivers: one function per table/figure of the paper.

This package is the reproduction's control room. ``experiment`` holds
the engine-agnostic runners; ``executor`` schedules independent jobs
over worker processes with an on-disk result cache; ``tables`` builds
the exact rows each bench target prints; ``sweep`` holds the parameter
sweeps (stack depth, shadow slots, path counts).
"""

from repro.core.executor import (
    ExperimentJob,
    JobResult,
    ResultCache,
    SweepExecutor,
)
from repro.core.experiment import (
    WorkloadSpec,
    build_program,
    multipath_machine,
    run_cycle,
    run_fast,
    run_multipath,
)
from repro.core.sweep import (
    mechanism_sweep,
    multipath_sweep,
    stack_depth_jobs,
    stack_depth_sweep,
    trace_depth_sweep,
)
from repro.core.tables import (
    ablation_btb_capacity,
    ablation_contents_depth,
    ablation_direction_predictors,
    ablation_fastsim_crosscheck,
    ablation_mechanisms,
    ablation_shadow_slots,
    fig_hit_rates,
    fig_multipath,
    fig_speedup,
    fig_stack_depth,
    table1,
    table3_baseline,
    table4_btb_only,
)

__all__ = [
    "ExperimentJob",
    "JobResult",
    "ResultCache",
    "SweepExecutor",
    "WorkloadSpec",
    "ablation_btb_capacity",
    "ablation_contents_depth",
    "ablation_direction_predictors",
    "ablation_fastsim_crosscheck",
    "ablation_mechanisms",
    "ablation_shadow_slots",
    "build_program",
    "fig_hit_rates",
    "fig_multipath",
    "fig_speedup",
    "fig_stack_depth",
    "mechanism_sweep",
    "multipath_machine",
    "multipath_sweep",
    "run_cycle",
    "run_fast",
    "run_multipath",
    "stack_depth_jobs",
    "stack_depth_sweep",
    "table1",
    "table3_baseline",
    "table4_btb_only",
    "trace_depth_sweep",
]
