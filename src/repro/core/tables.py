"""Row builders for every table and figure in the evaluation.

Each function returns ``(title, headers, rows)`` ready for
:func:`repro.stats.format_table`; the benchmark targets under
``benchmarks/`` print them, and EXPERIMENTS.md records representative
output against the paper's claims.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.config.defaults import baseline_config, table1_rows
from repro.config.options import (
    PRIMARY_MECHANISMS,
    RepairMechanism,
    StackOrganization,
)
from repro.core.experiment import (
    WorkloadSpec,
    build_program,
    multipath_machine,
    run_cycle,
    run_fast,
    run_multipath,
)
from repro.workloads.profiles import BENCHMARK_NAMES

TableData = Tuple[str, List[str], List[List[object]]]


def _specs(
    names: Sequence[str], seed: int, scale: float
) -> List[WorkloadSpec]:
    return [WorkloadSpec(name, seed, scale) for name in names]


def _pct(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(100.0 * value, 2)


# ----------------------------------------------------------------------
# T1 / T3 / T4.

def table1() -> TableData:
    """T1: the baseline machine model."""
    rows = [[name, value] for name, value in table1_rows(baseline_config())]
    return ("Table 1: baseline machine model", ["parameter", "value"], rows)


def table3_baseline(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """T3: baseline control-flow prediction on the cycle model."""
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        result, cpu = run_cycle(program, baseline_config())
        rows.append([
            spec.name,
            result.instructions,
            round(result.ipc, 3),
            _pct(result.cond_accuracy),
            _pct(result.return_accuracy),
            _pct(result.indirect_accuracy),
            _pct(cpu.frontend.btb.hit_rate),
            result.counter("mispredictions"),
        ])
    headers = ["benchmark", "insts", "ipc", "cond acc %", "ret acc %",
               "ind acc %", "btb hit %", "mispredicts"]
    return ("Table 3: baseline control-flow prediction", headers, rows)


def table4_btb_only(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """T4: return prediction without a RAS (BTB only).

    The paper: "Without a return-address stack, return addresses are
    found in the BTB only a little over half the time."
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        config = baseline_config().without_ras()
        result, cpu = run_cycle(program, config)
        with_ras, _ = run_cycle(program, baseline_config())
        rows.append([
            spec.name,
            _pct(result.return_accuracy),
            _pct(with_ras.return_accuracy),
            round(result.ipc, 3),
            round(with_ras.ipc, 3),
        ])
    headers = ["benchmark", "btb-only ret acc %", "with-RAS ret acc %",
               "btb-only ipc", "with-RAS ipc"]
    return ("Table 4: BTB-only return prediction", headers, rows)


# ----------------------------------------------------------------------
# F1: hit rates per repair mechanism.

def fig_hit_rates(
    names: Sequence[str] = BENCHMARK_NAMES,
    mechanisms: Iterable[RepairMechanism] = PRIMARY_MECHANISMS,
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """F1: committed-return hit rate by repair mechanism."""
    mechanisms = list(mechanisms)
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for mechanism in mechanisms:
            config = baseline_config().with_repair(mechanism)
            result, _ = run_cycle(program, config)
            row.append(_pct(result.return_accuracy))
        rows.append(row)
    headers = ["benchmark"] + [f"{m} %" for m in mechanisms]
    return ("Figure: return-address-stack hit rates by repair mechanism",
            headers, rows)


# ----------------------------------------------------------------------
# F2: speedups.

def fig_speedup(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """F2: IPC speedup of repair over no-repair and over BTB-only.

    The paper reports up to ~8.7% over no repair and up to ~15% over
    BTB-only prediction for the pointer+contents mechanism.
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        btb_only, _ = run_cycle(program, baseline_config().without_ras())
        none, _ = run_cycle(
            program, baseline_config().with_repair(RepairMechanism.NONE))
        repaired, _ = run_cycle(
            program,
            baseline_config().with_repair(
                RepairMechanism.TOS_POINTER_AND_CONTENTS),
        )
        rows.append([
            spec.name,
            round(btb_only.ipc, 3),
            round(none.ipc, 3),
            round(repaired.ipc, 3),
            round(100.0 * (repaired.ipc / none.ipc - 1.0), 2),
            round(100.0 * (repaired.ipc / btb_only.ipc - 1.0), 2),
        ])
    headers = ["benchmark", "btb-only ipc", "no-repair ipc", "repaired ipc",
               "speedup vs none %", "speedup vs btb-only %"]
    return ("Figure: speedup from pointer+contents repair", headers, rows)


# ----------------------------------------------------------------------
# F3: stack-depth sensitivity (fast model for breadth).

def fig_stack_depth(
    names: Sequence[str] = ("li", "vortex", "gcc"),
    sizes: Sequence[int] = (1, 2, 4, 8, 12, 16, 32, 64),
    mechanism: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
    seed: int = 1,
    scale: float = 0.5,
) -> TableData:
    """F3: return hit rate vs stack depth.

    Small stacks overflow under deep call chains and recursion; the
    curves flatten once the stack covers the common call depth. Uses
    the fast model so that eight sizes x several workloads stay cheap.
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for size in sizes:
            config = (baseline_config()
                      .with_repair(mechanism)
                      .with_ras_entries(size))
            result = run_fast(program, config)
            row.append(_pct(result.return_accuracy))
        rows.append(row)
    headers = ["benchmark"] + [f"{size}-entry %" for size in sizes]
    return (f"Figure: hit rate vs stack depth ({mechanism})", headers, rows)


# ----------------------------------------------------------------------
# F4: multipath stack organisations.

def fig_multipath(
    names: Sequence[str] = ("li", "vortex", "compress", "go"),
    path_counts: Sequence[int] = (2, 4),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """F4: relative IPC of stack organisations under multipath.

    As in the paper's figure, each path count is normalised to its own
    unified-stack case; per-path stacks should win by a wide margin on
    call-dense workloads and full checkpointing should not help.
    """
    organizations = list(StackOrganization)
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        for paths in path_counts:
            ipcs = {}
            accs = {}
            for organization in organizations:
                config = multipath_machine(paths, organization)
                result, _ = run_multipath(program, config)
                ipcs[organization] = result.ipc
                accs[organization] = result.return_accuracy
            unified = ipcs[StackOrganization.UNIFIED] or 1e-9
            row: List[object] = [spec.name, paths]
            for organization in organizations:
                row.append(round(ipcs[organization] / unified, 4))
            for organization in organizations:
                row.append(_pct(accs[organization]))
            rows.append(row)
    headers = (["benchmark", "paths"]
               + [f"{o} rel-ipc" for o in organizations]
               + [f"{o} ret %" for o in organizations])
    return ("Figure: multipath stack organisations (normalised to unified)",
            headers, rows)


# ----------------------------------------------------------------------
# Ablations.

def ablation_mechanisms(
    names: Sequence[str] = ("li", "vortex", "go"),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A1: all six mechanisms, including the related-work variants."""
    mechanisms = list(RepairMechanism)
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for mechanism in mechanisms:
            config = baseline_config().with_repair(mechanism)
            result, _ = run_cycle(program, config)
            row.append(_pct(result.return_accuracy))
        rows.append(row)
    headers = ["benchmark"] + [f"{m} %" for m in mechanisms]
    return ("Ablation: every repair mechanism (incl. valid bits and "
            "self-checkpointing)", headers, rows)


def ablation_shadow_slots(
    names: Sequence[str] = ("li", "go"),
    slot_counts: Sequence[Optional[int]] = (1, 2, 4, 8, 20, None),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A2: limited shadow-checkpoint slots (R10000=4, 21264~20)."""
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for slots in slot_counts:
            base = baseline_config()
            config = dataclasses.replace(
                base,
                predictor=dataclasses.replace(
                    base.predictor, shadow_checkpoint_slots=slots),
            )
            result, _ = run_cycle(program, config)
            row.append(_pct(result.return_accuracy))
        rows.append(row)
    headers = ["benchmark"] + [
        ("unlimited %" if slots is None else f"{slots} slots %")
        for slots in slot_counts
    ]
    return ("Ablation: shadow-checkpoint slots", headers, rows)


def ablation_btb_capacity(
    names: Sequence[str] = ("li", "vortex", "gcc"),
    set_counts: Sequence[int] = (16, 64, 256, 512),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A10: BTB capacity and BTB-only return prediction.

    Table 4's "a little over half" is not a capacity problem: even a
    large BTB stores one target per return site, and returns with
    multiple callers keep missing. Small BTBs add conflict misses on
    top. The gap to a RAS persists at every size.
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for sets in set_counts:
            base = baseline_config().without_ras()
            config = dataclasses.replace(
                base,
                predictor=dataclasses.replace(base.predictor, btb_sets=sets),
            )
            result, _ = run_cycle(program, config)
            row.append(_pct(result.return_accuracy))
        with_ras, _ = run_cycle(program, baseline_config())
        row.append(_pct(with_ras.return_accuracy))
        rows.append(row)
    headers = (["benchmark"]
               + [f"btb {sets}x4 %" for sets in set_counts]
               + ["32-entry RAS %"])
    return ("Ablation: BTB capacity vs BTB-only return prediction",
            headers, rows)


def ablation_contents_depth(
    names: Sequence[str] = ("li", "go", "vortex"),
    depths: Sequence[int] = (1, 2, 4, 8, 32),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A8: checkpointing the top-k entries instead of just the top.

    The paper: "One can, of course, save an arbitrary number of
    return-address-stack entries this way; the extreme would be to
    checkpoint the entire return-address stack." k=1 is the paper's
    proposal; k=32 equals full-stack checkpointing on a 32-entry stack.
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        row: List[object] = [spec.name]
        for depth in depths:
            config = baseline_config().with_contents_depth(depth)
            result, _ = run_cycle(program, config)
            row.append(_pct(result.return_accuracy))
        full, _ = run_cycle(
            program, baseline_config().with_repair(RepairMechanism.FULL_STACK))
        row.append(_pct(full.return_accuracy))
        rows.append(row)
    headers = (["benchmark"] + [f"top-{d} %" for d in depths]
               + ["full-stack %"])
    return ("Ablation: checkpointed-contents depth", headers, rows)


def ablation_direction_predictors(
    names: Sequence[str] = ("go", "li"),
    kinds: Sequence[str] = ("bimodal", "gshare", "hybrid"),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A7: repair payoff vs direction-predictor quality.

    A weaker direction predictor mispredicts more, sends more wrong
    paths through the RAS, and therefore makes repair worth more — the
    paper's corruption story, modulated through misprediction rate.
    Rows report cond-branch accuracy, then return accuracy with no
    repair and with the paper's mechanism, per predictor kind.
    """
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        for kind in kinds:
            base = baseline_config()
            row: List[object] = [spec.name, kind]
            accuracies = {}
            for mechanism in (RepairMechanism.NONE,
                              RepairMechanism.TOS_POINTER_AND_CONTENTS):
                config = dataclasses.replace(
                    base.with_repair(mechanism),
                    predictor=dataclasses.replace(
                        base.with_repair(mechanism).predictor,
                        direction_kind=kind),
                )
                result, _ = run_cycle(program, config)
                accuracies[mechanism] = result
            reference = accuracies[RepairMechanism.TOS_POINTER_AND_CONTENTS]
            none = accuracies[RepairMechanism.NONE]
            row.append(_pct(reference.cond_accuracy))
            row.append(_pct(none.return_accuracy))
            row.append(_pct(reference.return_accuracy))
            row.append(round(100.0 * (reference.ipc / none.ipc - 1.0), 2))
            rows.append(row)
    headers = ["benchmark", "direction", "cond acc %",
               "ret acc (none) %", "ret acc (repaired) %",
               "repair speedup %"]
    return ("Ablation: repair payoff vs direction-predictor quality",
            headers, rows)


def ablation_fastsim_crosscheck(
    names: Sequence[str] = ("li", "go"),
    seed: int = 1,
    scale: float = 0.25,
) -> TableData:
    """A3: fast front-end model vs cycle model, hit-rate trends."""
    mechanisms = list(PRIMARY_MECHANISMS)
    rows = []
    for spec in _specs(names, seed, scale):
        program = build_program(spec)
        for mechanism in mechanisms:
            config = baseline_config().with_repair(mechanism)
            cycle_result, _ = run_cycle(program, config)
            fast_result = run_fast(program, config)
            rows.append([
                spec.name,
                str(mechanism),
                _pct(cycle_result.return_accuracy),
                _pct(fast_result.return_accuracy),
            ])
    headers = ["benchmark", "mechanism", "cycle ret %", "fast ret %"]
    return ("Ablation: cycle-model vs fast-model hit rates", headers, rows)
