"""Row builders for every table and figure in the evaluation.

Each function returns ``(title, headers, rows)`` ready for
:func:`repro.stats.format_table`; the benchmark targets under
``benchmarks/`` print them, and EXPERIMENTS.md records representative
output against the paper's claims.

Every builder decomposes its grid into independent
:class:`~repro.core.executor.ExperimentJob` instances and submits them
through a :class:`~repro.core.executor.SweepExecutor` in a single
``run`` call, so one ``--jobs N`` flag parallelises the whole table and
the on-disk result cache skips any cell whose inputs are unchanged.
Rows are assembled from the executor's order-preserving results, which
makes parallel and serial output bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.config.defaults import baseline_config, table1_rows
from repro.config.options import (
    PRIMARY_MECHANISMS,
    RepairMechanism,
    StackOrganization,
)
from repro.core.executor import ExperimentJob, JobResult, SweepExecutor
from repro.core.experiment import WorkloadSpec, multipath_machine
from repro.workloads.profiles import BENCHMARK_NAMES

TableData = Tuple[str, List[str], List[List[object]]]


def _specs(
    names: Sequence[str], seed: int, scale: float
) -> List[WorkloadSpec]:
    return [WorkloadSpec(name, seed, scale) for name in names]


def _pct(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(100.0 * value, 2)


def _executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    return executor if executor is not None else SweepExecutor()


def _chunks(results: Sequence[JobResult], size: int) -> Iterator[List[JobResult]]:
    """Split a flat result list back into per-row groups of ``size``."""
    for start in range(0, len(results), size):
        yield list(results[start:start + size])


# ----------------------------------------------------------------------
# T1 / T3 / T4.

def table1() -> TableData:
    """T1: the baseline machine model."""
    rows = [[name, value] for name, value in table1_rows(baseline_config())]
    return ("Table 1: baseline machine model", ["parameter", "value"], rows)


def table3_baseline(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """T3: baseline control-flow prediction on the cycle model."""
    specs = _specs(names, seed, scale)
    jobs = [ExperimentJob(spec, baseline_config(), "cycle") for spec in specs]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, result in zip(specs, results):
        rows.append([
            spec.name,
            result.instructions,
            round(result.ipc, 3),
            _pct(result.cond_accuracy),
            _pct(result.return_accuracy),
            _pct(result.indirect_accuracy),
            _pct(result.btb_hit_rate),
            result.counter("mispredictions"),
        ])
    headers = ["benchmark", "insts", "ipc", "cond acc %", "ret acc %",
               "ind acc %", "btb hit %", "mispredicts"]
    return ("Table 3: baseline control-flow prediction", headers, rows)


def table4_btb_only(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """T4: return prediction without a RAS (BTB only).

    The paper: "Without a return-address stack, return addresses are
    found in the BTB only a little over half the time."
    """
    specs = _specs(names, seed, scale)
    jobs: List[ExperimentJob] = []
    for spec in specs:
        jobs.append(ExperimentJob(spec, baseline_config().without_ras(),
                                  "cycle"))
        jobs.append(ExperimentJob(spec, baseline_config(), "cycle"))
    results = _executor(executor).run(jobs)
    rows = []
    for spec, (btb_only, with_ras) in zip(specs, _chunks(results, 2)):
        rows.append([
            spec.name,
            _pct(btb_only.return_accuracy),
            _pct(with_ras.return_accuracy),
            round(btb_only.ipc, 3),
            round(with_ras.ipc, 3),
        ])
    headers = ["benchmark", "btb-only ret acc %", "with-RAS ret acc %",
               "btb-only ipc", "with-RAS ipc"]
    return ("Table 4: BTB-only return prediction", headers, rows)


# ----------------------------------------------------------------------
# F1: hit rates per repair mechanism.

def fig_hit_rates(
    names: Sequence[str] = BENCHMARK_NAMES,
    mechanisms: Iterable[RepairMechanism] = PRIMARY_MECHANISMS,
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """F1: committed-return hit rate by repair mechanism."""
    mechanisms = list(mechanisms)
    specs = _specs(names, seed, scale)
    jobs = [
        ExperimentJob(spec, baseline_config().with_repair(mechanism), "cycle")
        for spec in specs for mechanism in mechanisms
    ]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(mechanisms))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = ["benchmark"] + [f"{m} %" for m in mechanisms]
    return ("Figure: return-address-stack hit rates by repair mechanism",
            headers, rows)


# ----------------------------------------------------------------------
# F2: speedups.

def fig_speedup(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """F2: IPC speedup of repair over no-repair and over BTB-only.

    The paper reports up to ~8.7% over no repair and up to ~15% over
    BTB-only prediction for the pointer+contents mechanism.
    """
    specs = _specs(names, seed, scale)
    jobs: List[ExperimentJob] = []
    for spec in specs:
        jobs.append(ExperimentJob(spec, baseline_config().without_ras(),
                                  "cycle"))
        jobs.append(ExperimentJob(
            spec, baseline_config().with_repair(RepairMechanism.NONE),
            "cycle"))
        jobs.append(ExperimentJob(
            spec,
            baseline_config().with_repair(
                RepairMechanism.TOS_POINTER_AND_CONTENTS),
            "cycle"))
    results = _executor(executor).run(jobs)
    rows = []
    for spec, (btb_only, none, repaired) in zip(specs, _chunks(results, 3)):
        rows.append([
            spec.name,
            round(btb_only.ipc, 3),
            round(none.ipc, 3),
            round(repaired.ipc, 3),
            round(100.0 * (repaired.ipc / none.ipc - 1.0), 2),
            round(100.0 * (repaired.ipc / btb_only.ipc - 1.0), 2),
        ])
    headers = ["benchmark", "btb-only ipc", "no-repair ipc", "repaired ipc",
               "speedup vs none %", "speedup vs btb-only %"]
    return ("Figure: speedup from pointer+contents repair", headers, rows)


# ----------------------------------------------------------------------
# F3: stack-depth sensitivity (fast model for breadth).

def fig_stack_depth(
    names: Sequence[str] = ("li", "vortex", "gcc"),
    sizes: Sequence[int] = (1, 2, 4, 8, 12, 16, 32, 64),
    mechanism: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
    seed: int = 1,
    scale: float = 0.5,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """F3: return hit rate vs stack depth.

    Small stacks overflow under deep call chains and recursion; the
    curves flatten once the stack covers the common call depth. Uses
    the fast model so that eight sizes x several workloads stay cheap.
    """
    specs = _specs(names, seed, scale)
    repaired = baseline_config().with_repair(mechanism)
    jobs = [
        ExperimentJob(spec, repaired.with_ras_entries(size), "fast")
        for spec in specs for size in sizes
    ]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(sizes))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = ["benchmark"] + [f"{size}-entry %" for size in sizes]
    return (f"Figure: hit rate vs stack depth ({mechanism})", headers, rows)


# ----------------------------------------------------------------------
# F4: multipath stack organisations.

def fig_multipath(
    names: Sequence[str] = ("li", "vortex", "compress", "go"),
    path_counts: Sequence[int] = (2, 4),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """F4: relative IPC of stack organisations under multipath.

    As in the paper's figure, each path count is normalised to its own
    unified-stack case; per-path stacks should win by a wide margin on
    call-dense workloads and full checkpointing should not help.
    """
    organizations = list(StackOrganization)
    specs = _specs(names, seed, scale)
    grid = [(spec, paths) for spec in specs for paths in path_counts]
    jobs = [
        ExperimentJob(spec, multipath_machine(paths, organization),
                      "multipath")
        for spec, paths in grid for organization in organizations
    ]
    results = _executor(executor).run(jobs)
    rows = []
    for (spec, paths), chunk in zip(grid,
                                    _chunks(results, len(organizations))):
        ipcs = {organization: result.ipc
                for organization, result in zip(organizations, chunk)}
        accs = {organization: result.return_accuracy
                for organization, result in zip(organizations, chunk)}
        unified = ipcs[StackOrganization.UNIFIED] or 1e-9
        row: List[object] = [spec.name, paths]
        for organization in organizations:
            row.append(round(ipcs[organization] / unified, 4))
        for organization in organizations:
            row.append(_pct(accs[organization]))
        rows.append(row)
    headers = (["benchmark", "paths"]
               + [f"{o} rel-ipc" for o in organizations]
               + [f"{o} ret %" for o in organizations])
    return ("Figure: multipath stack organisations (normalised to unified)",
            headers, rows)


# ----------------------------------------------------------------------
# Ablations.

def ablation_mechanisms(
    names: Sequence[str] = ("li", "vortex", "go"),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A1: all six mechanisms, including the related-work variants."""
    mechanisms = list(RepairMechanism)
    specs = _specs(names, seed, scale)
    jobs = [
        ExperimentJob(spec, baseline_config().with_repair(mechanism), "cycle")
        for spec in specs for mechanism in mechanisms
    ]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(mechanisms))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = ["benchmark"] + [f"{m} %" for m in mechanisms]
    return ("Ablation: every repair mechanism (incl. valid bits and "
            "self-checkpointing)", headers, rows)


def ablation_shadow_slots(
    names: Sequence[str] = ("li", "go"),
    slot_counts: Sequence[Optional[int]] = (1, 2, 4, 8, 20, None),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A2: limited shadow-checkpoint slots (R10000=4, 21264~20)."""
    specs = _specs(names, seed, scale)
    base = baseline_config()
    configs = [
        dataclasses.replace(
            base,
            predictor=dataclasses.replace(
                base.predictor, shadow_checkpoint_slots=slots),
        )
        for slots in slot_counts
    ]
    jobs = [ExperimentJob(spec, config, "cycle")
            for spec in specs for config in configs]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(configs))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = ["benchmark"] + [
        ("unlimited %" if slots is None else f"{slots} slots %")
        for slots in slot_counts
    ]
    return ("Ablation: shadow-checkpoint slots", headers, rows)


def ablation_btb_capacity(
    names: Sequence[str] = ("li", "vortex", "gcc"),
    set_counts: Sequence[int] = (16, 64, 256, 512),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A10: BTB capacity and BTB-only return prediction.

    Table 4's "a little over half" is not a capacity problem: even a
    large BTB stores one target per return site, and returns with
    multiple callers keep missing. Small BTBs add conflict misses on
    top. The gap to a RAS persists at every size.
    """
    specs = _specs(names, seed, scale)
    base = baseline_config().without_ras()
    configs = [
        dataclasses.replace(
            base,
            predictor=dataclasses.replace(base.predictor, btb_sets=sets),
        )
        for sets in set_counts
    ] + [baseline_config()]
    jobs = [ExperimentJob(spec, config, "cycle")
            for spec in specs for config in configs]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(configs))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = (["benchmark"]
               + [f"btb {sets}x4 %" for sets in set_counts]
               + ["32-entry RAS %"])
    return ("Ablation: BTB capacity vs BTB-only return prediction",
            headers, rows)


def ablation_contents_depth(
    names: Sequence[str] = ("li", "go", "vortex"),
    depths: Sequence[int] = (1, 2, 4, 8, 32),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A8: checkpointing the top-k entries instead of just the top.

    The paper: "One can, of course, save an arbitrary number of
    return-address-stack entries this way; the extreme would be to
    checkpoint the entire return-address stack." k=1 is the paper's
    proposal; k=32 equals full-stack checkpointing on a 32-entry stack.
    """
    specs = _specs(names, seed, scale)
    configs = [baseline_config().with_contents_depth(depth)
               for depth in depths]
    configs.append(
        baseline_config().with_repair(RepairMechanism.FULL_STACK))
    jobs = [ExperimentJob(spec, config, "cycle")
            for spec in specs for config in configs]
    results = _executor(executor).run(jobs)
    rows = []
    for spec, chunk in zip(specs, _chunks(results, len(configs))):
        rows.append([spec.name]
                    + [_pct(result.return_accuracy) for result in chunk])
    headers = (["benchmark"] + [f"top-{d} %" for d in depths]
               + ["full-stack %"])
    return ("Ablation: checkpointed-contents depth", headers, rows)


def ablation_direction_predictors(
    names: Sequence[str] = ("go", "li"),
    kinds: Sequence[str] = ("bimodal", "gshare", "hybrid"),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A7: repair payoff vs direction-predictor quality.

    A weaker direction predictor mispredicts more, sends more wrong
    paths through the RAS, and therefore makes repair worth more — the
    paper's corruption story, modulated through misprediction rate.
    Rows report cond-branch accuracy, then return accuracy with no
    repair and with the paper's mechanism, per predictor kind.
    """
    specs = _specs(names, seed, scale)
    base = baseline_config()
    grid = [(spec, kind) for spec in specs for kind in kinds]
    jobs: List[ExperimentJob] = []
    for spec, kind in grid:
        for mechanism in (RepairMechanism.NONE,
                          RepairMechanism.TOS_POINTER_AND_CONTENTS):
            repaired = base.with_repair(mechanism)
            config = dataclasses.replace(
                repaired,
                predictor=dataclasses.replace(
                    repaired.predictor, direction_kind=kind),
            )
            jobs.append(ExperimentJob(spec, config, "cycle"))
    results = _executor(executor).run(jobs)
    rows = []
    for (spec, kind), (none, reference) in zip(grid, _chunks(results, 2)):
        rows.append([
            spec.name,
            kind,
            _pct(reference.cond_accuracy),
            _pct(none.return_accuracy),
            _pct(reference.return_accuracy),
            round(100.0 * (reference.ipc / none.ipc - 1.0), 2),
        ])
    headers = ["benchmark", "direction", "cond acc %",
               "ret acc (none) %", "ret acc (repaired) %",
               "repair speedup %"]
    return ("Ablation: repair payoff vs direction-predictor quality",
            headers, rows)


def ablation_fastsim_crosscheck(
    names: Sequence[str] = ("li", "go"),
    seed: int = 1,
    scale: float = 0.25,
    executor: Optional[SweepExecutor] = None,
) -> TableData:
    """A3: fast front-end model vs cycle model, hit-rate trends."""
    mechanisms = list(PRIMARY_MECHANISMS)
    specs = _specs(names, seed, scale)
    grid = [(spec, mechanism) for spec in specs for mechanism in mechanisms]
    jobs: List[ExperimentJob] = []
    for spec, mechanism in grid:
        config = baseline_config().with_repair(mechanism)
        jobs.append(ExperimentJob(spec, config, "cycle"))
        jobs.append(ExperimentJob(spec, config, "fast"))
    results = _executor(executor).run(jobs)
    rows = []
    for (spec, mechanism), (cycle_result, fast_result) in zip(
            grid, _chunks(results, 2)):
        rows.append([
            spec.name,
            str(mechanism),
            _pct(cycle_result.return_accuracy),
            _pct(fast_result.return_accuracy),
        ])
    headers = ["benchmark", "mechanism", "cycle ret %", "fast ret %"]
    return ("Ablation: cycle-model vs fast-model hit rates", headers, rows)
