"""Engine-agnostic experiment runners."""

from __future__ import annotations

import dataclasses
import functools
import os
from typing import Optional, Tuple

from repro.config.machine import MachineConfig
from repro.config.options import StackOrganization
from repro.fastsim.frontend_sim import FastFrontEndSim, FastSimResult
from repro.isa.program import Program
from repro.multipath.cpu import MultipathCPU
from repro.pipeline.cpu import SinglePathCPU
from repro.pipeline.results import SimResult
from repro.workloads.generator import build_workload


def default_scale() -> float:
    """Experiment scale, overridable via REPRO_SCALE.

    1.0 runs ~50-150k instructions per workload; the benchmark defaults
    use a smaller scale so the whole harness finishes in minutes on a
    laptop. Raise it for tighter statistics.
    """
    return float(os.environ.get("REPRO_SCALE", "0.25"))


def default_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "1"))


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Identifies one synthetic-benchmark build.

    The triple ``(name, seed, scale)`` fully determines the generated
    program (workload generation is seeded and deterministic), which
    makes a spec the unit of identity for both program memoisation and
    the executor's on-disk result cache. Specs are tiny and picklable,
    so they — not built programs — are what jobs ship to worker
    processes.
    """

    name: str
    seed: int = 1
    scale: float = 1.0


@functools.lru_cache(maxsize=64)
def _cached_build(name: str, seed: int, scale: float) -> Program:
    return build_workload(name, seed=seed, scale=scale)


def build_program(spec: WorkloadSpec) -> Program:
    """Build (and memoise) the program for ``spec``.

    Memoisation contract: within one process, equal specs return the
    *same* ``Program`` object (LRU keyed on ``(name, seed, scale)``),
    so a sweep of N configs over one workload pays for one build. Each
    executor worker process holds its own memo, warmed on first use —
    callers should pass specs around and resolve them as late as
    possible rather than pre-building programs.
    """
    return _cached_build(spec.name, spec.seed, spec.scale)


def run_cycle(
    program: Program,
    config: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
) -> Tuple[SimResult, SinglePathCPU]:
    """Run the reference single-path cycle model; returns (result, cpu).

    This is the ``"cycle"`` executor engine: the execution-driven
    out-of-order pipeline with real wrong-path execution
    (docs/architecture.md §3). The live ``cpu`` comes back alongside
    the result for callers that want post-run structures (BTB hit
    rate, pipeline timelines); sweep code should go through
    :class:`~repro.core.executor.SweepExecutor` instead, which caches
    and parallelises. :func:`repro.fastsim.cycle.run_cycle_fast` is
    the bit-identical columnar twin (``"cycle-fast"``, ~3x faster —
    see docs/engines.md).
    """
    cpu = SinglePathCPU(program, config, max_instructions=max_instructions)
    return cpu.run(), cpu


def run_multipath(
    program: Program,
    config: MachineConfig,
    max_instructions: Optional[int] = None,
) -> Tuple[SimResult, MultipathCPU]:
    """Run the reference multipath cycle model; returns (result, cpu).

    The ``"multipath"`` executor engine: forking path contexts with
    per-path / unified / checkpointed stacks — the machinery behind
    the paper's §5 result (docs/architecture.md §4). ``config`` is
    required because multipath only makes sense with a path budget;
    build one with :func:`multipath_machine`.
    :func:`repro.fastsim.multipath.run_multipath_fast` is the
    bit-identical work-list twin (``"multipath-fast"``).
    """
    cpu = MultipathCPU(program, config, max_instructions=max_instructions)
    return cpu.run(), cpu


def run_fast(
    program: Program,
    config: Optional[MachineConfig] = None,
    **kwargs,
) -> FastSimResult:
    """Run the prediction-only front-end model (the ``"fast"`` engine).

    Unlike the fast *cycle* engines, this is a different, cheaper
    model — predictor state in program order plus a bounded wrong-path
    walk, with a first-order cycle estimate (docs/architecture.md §5).
    Use it for hit-rate trends over large grids, not for IPC claims;
    it carries no bit-parity contract against the cycle models.
    """
    predictor = (config or MachineConfig()).predictor
    return FastFrontEndSim(program, predictor, **kwargs).run()


def multipath_machine(
    paths: int,
    organization: StackOrganization,
    base: Optional[MachineConfig] = None,
) -> MachineConfig:
    """A multipath machine with front-end bandwidth scaled to paths.

    The paper notes multipath execution "requires ... more fetch,
    rename, and issue bandwidth"; without it every fork halves the
    per-path fetch rate and the organisation comparison is drowned in
    front-end starvation. We scale fetch/decode width and the IFQ with
    the path budget, leaving the window and backend untouched.
    """
    config = (base or MachineConfig()).with_multipath(paths, organization)
    factor = max(1, paths // 2)
    return dataclasses.replace(
        config,
        core=dataclasses.replace(
            config.core,
            fetch_width=config.core.fetch_width * factor,
            decode_width=config.core.decode_width * factor,
            ifq_size=config.core.ifq_size * factor,
        ),
    )
