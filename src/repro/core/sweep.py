"""Programmatic parameter sweeps (the examples build on these)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.config.defaults import baseline_config
from repro.config.machine import MachineConfig
from repro.config.options import RepairMechanism, StackOrganization
from repro.core.experiment import multipath_machine, run_cycle, run_fast, run_multipath
from repro.isa.program import Program


def mechanism_sweep(
    program: Program,
    mechanisms: Iterable[RepairMechanism],
    base: Optional[MachineConfig] = None,
) -> Dict[RepairMechanism, Dict[str, object]]:
    """Cycle-model run per repair mechanism; keyed summary dicts."""
    base = base or baseline_config()
    results = {}
    for mechanism in mechanisms:
        result, _ = run_cycle(program, base.with_repair(mechanism))
        results[mechanism] = result.as_dict()
    return results


def stack_depth_sweep(
    program: Program,
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
    use_fast_model: bool = True,
) -> Dict[int, Optional[float]]:
    """Return-hit-rate per stack depth."""
    results: Dict[int, Optional[float]] = {}
    for size in sizes:
        config = baseline_config().with_repair(mechanism).with_ras_entries(size)
        if use_fast_model:
            results[size] = run_fast(program, config).return_accuracy
        else:
            result, _ = run_cycle(program, config)
            results[size] = result.return_accuracy
    return results


def multipath_sweep(
    program: Program,
    path_counts: Sequence[int],
    organizations: Iterable[StackOrganization] = tuple(StackOrganization),
) -> List[Dict[str, object]]:
    """IPC/accuracy grid over (paths, stack organisation)."""
    rows = []
    for paths in path_counts:
        for organization in organizations:
            config = multipath_machine(paths, organization)
            result, _ = run_multipath(program, config)
            rows.append({
                "paths": paths,
                "organization": organization,
                "ipc": result.ipc,
                "return_accuracy": result.return_accuracy,
                "forks": result.counter("forks"),
                "fork_saved": result.counter("fork_saved_mispredictions"),
            })
    return rows
