"""Programmatic parameter sweeps (the examples build on these).

Every sweep decomposes into independent jobs and routes them through a
:class:`~repro.core.executor.SweepExecutor`, so callers get parallelism
and result caching by passing ``executor=SweepExecutor(jobs=N)``. The
default executor runs serially with the process-default cache; results
are identical at every ``jobs`` setting.

Workload arguments accept either a prebuilt
:class:`~repro.isa.program.Program` (ad-hoc, uncacheable) or a
:class:`~repro.core.experiment.WorkloadSpec` (cacheable, and rebuilt
memoised inside each worker process).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.config.defaults import baseline_config
from repro.config.machine import MachineConfig
from repro.config.options import RepairMechanism, StackOrganization
from repro.core.executor import ExperimentJob, JobResult, SweepExecutor
from repro.core.experiment import WorkloadSpec, multipath_machine
from repro.isa.program import Program
from repro.telemetry import span
from repro.trace.replay import TraceShardSpec

Workload = Union[Program, WorkloadSpec]


def _executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    return executor if executor is not None else SweepExecutor()


def mechanism_sweep(
    workload: Workload,
    mechanisms: Iterable[RepairMechanism],
    base: Optional[MachineConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[RepairMechanism, Dict[str, object]]:
    """Cycle-model run per repair mechanism; keyed summary dicts."""
    base = base or baseline_config()
    mechanisms = list(mechanisms)
    jobs = [ExperimentJob(workload, base.with_repair(mechanism), "cycle")
            for mechanism in mechanisms]
    with span("sweep/mechanisms", points=len(jobs)):
        results = _executor(executor).run(jobs)
    return {mechanism: result.as_dict()
            for mechanism, result in zip(mechanisms, results)}


def stack_depth_jobs(
    workload: Workload,
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
    use_fast_model: bool = True,
    base: Optional[MachineConfig] = None,
) -> List[ExperimentJob]:
    """The job list behind :func:`stack_depth_sweep`, one per depth.

    Exposed separately so other schedulers — the ``repro-sim cluster
    submit`` command in particular — can hand the exact same cacheable
    jobs to a different executor without re-deriving configs.
    """
    repaired = (base or baseline_config()).with_repair(mechanism)
    engine = "fast" if use_fast_model else "cycle"
    return [ExperimentJob(workload, repaired.with_ras_entries(size), engine)
            for size in sizes]


def stack_depth_sweep(
    workload: Workload,
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS,
    use_fast_model: bool = True,
    base: Optional[MachineConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, Optional[float]]:
    """Return-hit-rate per stack depth.

    The repaired base config is derived once, outside the loop; each
    depth only swaps ``ras_entries``. Memoisation contract: a
    ``WorkloadSpec`` workload is built at most once per process — the
    executor's workers resolve it through
    :func:`~repro.core.experiment.build_program`, whose LRU cache keys
    on ``(name, seed, scale)`` — so an N-point sweep costs one program
    build per worker, not N. A prebuilt ``Program`` is shared as-is.
    """
    jobs = stack_depth_jobs(workload, sizes, mechanism=mechanism,
                            use_fast_model=use_fast_model, base=base)
    engine = jobs[0].engine if jobs else "fast"
    with span("sweep/stack-depth", engine=engine, points=len(jobs)):
        results = _executor(executor).run(jobs)
    return {size: result.return_accuracy
            for size, result in zip(sizes, results)}


def trace_depth_sweep(
    shards: Sequence[TraceShardSpec],
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.NONE,
    base: Optional[MachineConfig] = None,
    executor: Optional[SweepExecutor] = None,
    engine: str = "trace",
) -> Dict[str, Dict[int, JobResult]]:
    """Stack-depth capacity sweep over on-disk trace shards.

    One executor job per ``shard x size`` — the unit the result cache
    keys on (shard checksum + config fingerprint + engine), so
    re-sweeping an unchanged corpus is pure cache hits and adding one
    shard only replays that shard. Results carry the full
    return/overflow counters keyed by shard name then stack size.

    ``engine`` selects the replay path: ``"trace"`` (streaming,
    event-at-a-time) or ``"batch"`` (block-at-a-time flat-array decode,
    bit-identical counters at several times the throughput — see
    docs/performance.md).
    """
    repaired = (base or baseline_config()).with_repair(mechanism)
    shards = list(shards)
    sizes = list(sizes)
    jobs = [ExperimentJob(shard, repaired.with_ras_entries(size), engine)
            for shard in shards for size in sizes]
    with span("sweep/trace-depth", shards=len(shards), sizes=len(sizes),
              engine=engine):
        results = _executor(executor).run(jobs)
    swept: Dict[str, Dict[int, JobResult]] = {}
    for index, shard in enumerate(shards):
        chunk = results[index * len(sizes):(index + 1) * len(sizes)]
        swept[shard.name] = dict(zip(sizes, chunk))
    return swept


def multipath_sweep(
    workload: Workload,
    path_counts: Sequence[int],
    organizations: Iterable[StackOrganization] = tuple(StackOrganization),
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, object]]:
    """IPC/accuracy grid over (paths, stack organisation)."""
    organizations = list(organizations)
    grid = [(paths, organization)
            for paths in path_counts for organization in organizations]
    jobs = [ExperimentJob(workload, multipath_machine(paths, organization),
                          "multipath")
            for paths, organization in grid]
    with span("sweep/multipath", points=len(jobs)):
        results = _executor(executor).run(jobs)
    return [
        {
            "paths": paths,
            "organization": organization,
            "ipc": result.ipc,
            "return_accuracy": result.return_accuracy,
            "forks": result.counter("forks"),
            "fork_saved": result.counter("fork_saved_mispredictions"),
        }
        for (paths, organization), result in zip(grid, results)
    ]
